#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "rrb/common/runner_config.hpp"
#include "rrb/core/broadcast.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/metrics/observer.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/phonecall/protocol.hpp"
#include "rrb/phonecall/result.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/sim/aggregate.hpp"
#include "rrb/sim/runner.hpp"

/// \file trial.hpp
/// Repeated-trial experiment driver: regenerates the random graph per trial
/// (matching the paper's "random graph, random algorithm" probability
/// space), runs a protocol from a random source, and aggregates.
///
/// Trials execute on the deterministic parallel runner (rrb/sim/runner.hpp):
/// trial i draws every random bit from Rng(seed).fork(i) and results are
/// reduced in trial order, so the outcome is bit-identical for any
/// RunnerConfig — the sequential path is just threads = 1.
///
/// Every driver has an observer-aware overload: pass a factory building a
/// fresh MetricObserver per trial (rrb/metrics/observer.hpp) and get the
/// observers back *in trial order* next to the usual TrialOutcome.
/// Observers are read-only and draw nothing, so the instrumented overloads
/// return byte-identical TrialOutcomes to the bare ones — the observers are
/// pure extra columns (pinned in tests/test_metrics.cpp).

namespace rrb {

/// Builds a fresh graph for each trial. Receives the per-trial Rng.
/// Invoked concurrently from worker threads, one call per trial: the
/// callable must be reentrant (capture by value or reference state it only
/// reads), which every pure generator factory already is.
using GraphFactory = std::function<Graph(Rng&)>;

/// Builds a fresh protocol instance per trial (protocols are stateful).
/// Same reentrancy requirement as GraphFactory.
using ProtocolFactory =
    std::function<std::unique_ptr<BroadcastProtocol>(const Graph&)>;

struct TrialConfig {
  int trials = 5;
  std::uint64_t seed = 0x5eed;
  ChannelConfig channel;
  RunLimits limits;
  bool random_source = true;  ///< random source per trial; node 0 otherwise
  RunnerConfig runner;        ///< worker pool; never changes the output
};

/// Everything measured across the trials of one experiment cell.
struct TrialOutcome {
  std::vector<RunResult> runs;  ///< indexed by trial
  Summary rounds;            ///< rounds until the protocol stopped
  Summary completion_round;  ///< rounds until all nodes informed (only
                             ///< completed runs contribute)
  Summary total_tx;
  Summary tx_per_node;
  Summary push_tx;
  Summary pull_tx;
  Summary coverage;          ///< final_informed / n per run (< 1 when a
                             ///< self-terminating scheme leaves stragglers,
                             ///< e.g. under channel failures)
  double completion_rate = 0.0;  ///< fraction of runs informing everyone
};

/// Run `config.trials` independent trials.
[[nodiscard]] TrialOutcome run_trials(const GraphFactory& graph_factory,
                                      const ProtocolFactory& protocol_factory,
                                      const TrialConfig& config);

/// Repeat a broadcast() scheme options.trials times on a fixed graph,
/// scheduled by options.runner. Trial i runs a fresh protocol instance
/// seeded from (options.seed, i); `source` fixes the originator, or pass
/// kNoNode to draw a fresh uniform source per trial.
[[nodiscard]] TrialOutcome broadcast_trials(const Graph& graph,
                                            const BroadcastOptions& options,
                                            NodeId source = kNoNode);

/// An instrumented trial sweep: the usual TrialOutcome (byte-identical to
/// the bare overload's) plus one observer per trial, in trial order — the
/// shape the seeding contract demands for any reduction over them.
template <MetricObserver Obs>
struct ObservedOutcome {
  TrialOutcome outcome;
  std::vector<Obs> observers;  ///< indexed by trial
};

namespace detail {

/// Reduce per-trial RunResults, already in trial order, into a
/// TrialOutcome. The same reduction the bare drivers apply chunk-wise —
/// samples enter each Summary in ascending trial order either way, so both
/// paths produce byte-identical outcomes.
[[nodiscard]] TrialOutcome reduce_runs(std::vector<RunResult>&& runs);

}  // namespace detail

/// Observer-aware run_trials: `make_observer(graph)` builds the trial's
/// observer before the run; the engine fires its hooks from inside the
/// round loop. Randomness is untouched — trial i still draws exactly
/// Rng(config.seed).fork(i) in the bare overload's order.
template <typename MakeObserver,
          MetricObserver Obs =
              std::invoke_result_t<const MakeObserver&, const Graph&>>
[[nodiscard]] ObservedOutcome<Obs> run_trials(
    const GraphFactory& graph_factory,
    const ProtocolFactory& protocol_factory, const TrialConfig& config,
    const MakeObserver& make_observer) {
  RRB_REQUIRE(config.trials >= 1, "need at least one trial");
  const auto trials = static_cast<std::size_t>(config.trials);
  std::vector<RunResult> runs(trials);
  std::vector<std::optional<Obs>> slots(trials);

  ParallelRunner runner(config.runner);
  runner.for_each_trial(config.trials, [&](int trial) {
    Rng rng = Rng(config.seed).fork(static_cast<std::uint64_t>(trial));
    const Graph graph = graph_factory(rng);
    RRB_REQUIRE(graph.num_nodes() >= 2, "trial graph too small");
    auto protocol = protocol_factory(graph);
    RRB_REQUIRE(protocol != nullptr, "protocol factory returned null");
    Obs observers = make_observer(graph);

    GraphTopology topo(graph);
    PhoneCallEngine<GraphTopology> engine(topo, config.channel, rng);
    const NodeId source =
        config.random_source
            ? static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()))
            : 0;
    runs[static_cast<std::size_t>(trial)] =
        engine.run(*protocol, source, config.limits, observers);
    slots[static_cast<std::size_t>(trial)] = std::move(observers);
  });

  ObservedOutcome<Obs> observed;
  observed.outcome = detail::reduce_runs(std::move(runs));
  observed.observers.reserve(trials);
  for (std::optional<Obs>& slot : slots)
    observed.observers.push_back(std::move(*slot));
  return observed;
}

/// Observer-aware broadcast_trials: the facade sweep with a per-trial
/// observer. Same draw order as the bare overload; the scheme's protocol
/// is statically dispatched per trial exactly as there.
template <typename MakeObserver,
          MetricObserver Obs =
              std::invoke_result_t<const MakeObserver&, const Graph&>>
[[nodiscard]] ObservedOutcome<Obs> broadcast_trials(
    const Graph& graph, const BroadcastOptions& options,
    const MakeObserver& make_observer, NodeId source = kNoNode) {
  RRB_REQUIRE(options.trials >= 1, "need at least one trial");
  RRB_REQUIRE(source == kNoNode || source < graph.num_nodes(),
              "source out of range");
  RunLimits limits;
  limits.max_rounds = options.max_rounds;
  limits.record_rounds = options.record_rounds;

  const auto trials = static_cast<std::size_t>(options.trials);
  std::vector<RunResult> runs(trials);
  std::vector<std::optional<Obs>> slots(trials);

  ParallelRunner runner(options.runner);
  runner.for_each_trial(options.trials, [&](int trial) {
    Rng rng = Rng(options.seed).fork(static_cast<std::uint64_t>(trial));
    Obs observers = make_observer(graph);
    runs[static_cast<std::size_t>(trial)] = with_scheme(
        graph, options, [&](auto proto, const ChannelConfig& channel) {
          GraphTopology topo(graph);
          PhoneCallEngine<GraphTopology> engine(topo, channel, rng);
          const NodeId from =
              source != kNoNode
                  ? source
                  : static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()));
          return engine.run(proto, from, limits, observers);
        });
    slots[static_cast<std::size_t>(trial)] = std::move(observers);
  });

  ObservedOutcome<Obs> observed;
  observed.outcome = detail::reduce_runs(std::move(runs));
  observed.observers.reserve(trials);
  for (std::optional<Obs>& slot : slots)
    observed.observers.push_back(std::move(*slot));
  return observed;
}

}  // namespace rrb
