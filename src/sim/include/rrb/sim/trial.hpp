#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rrb/common/runner_config.hpp"
#include "rrb/core/broadcast.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/phonecall/protocol.hpp"
#include "rrb/phonecall/result.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/sim/aggregate.hpp"

/// \file trial.hpp
/// Repeated-trial experiment driver: regenerates the random graph per trial
/// (matching the paper's "random graph, random algorithm" probability
/// space), runs a protocol from a random source, and aggregates.
///
/// Trials execute on the deterministic parallel runner (rrb/sim/runner.hpp):
/// trial i draws every random bit from Rng(seed).fork(i) and results are
/// reduced in trial order, so the outcome is bit-identical for any
/// RunnerConfig — the sequential path is just threads = 1.

namespace rrb {

/// Builds a fresh graph for each trial. Receives the per-trial Rng.
/// Invoked concurrently from worker threads, one call per trial: the
/// callable must be reentrant (capture by value or reference state it only
/// reads), which every pure generator factory already is.
using GraphFactory = std::function<Graph(Rng&)>;

/// Builds a fresh protocol instance per trial (protocols are stateful).
/// Same reentrancy requirement as GraphFactory.
using ProtocolFactory =
    std::function<std::unique_ptr<BroadcastProtocol>(const Graph&)>;

struct TrialConfig {
  int trials = 5;
  std::uint64_t seed = 0x5eed;
  ChannelConfig channel;
  RunLimits limits;
  bool random_source = true;  ///< random source per trial; node 0 otherwise
  RunnerConfig runner;        ///< worker pool; never changes the output
};

/// Everything measured across the trials of one experiment cell.
struct TrialOutcome {
  std::vector<RunResult> runs;  ///< indexed by trial
  Summary rounds;            ///< rounds until the protocol stopped
  Summary completion_round;  ///< rounds until all nodes informed (only
                             ///< completed runs contribute)
  Summary total_tx;
  Summary tx_per_node;
  Summary push_tx;
  Summary pull_tx;
  double completion_rate = 0.0;  ///< fraction of runs informing everyone
};

/// Run `config.trials` independent trials.
[[nodiscard]] TrialOutcome run_trials(const GraphFactory& graph_factory,
                                      const ProtocolFactory& protocol_factory,
                                      const TrialConfig& config);

/// Repeat a broadcast() scheme options.trials times on a fixed graph,
/// scheduled by options.runner. Trial i runs a fresh protocol instance
/// seeded from (options.seed, i); `source` fixes the originator, or pass
/// kNoNode to draw a fresh uniform source per trial.
[[nodiscard]] TrialOutcome broadcast_trials(const Graph& graph,
                                            const BroadcastOptions& options,
                                            NodeId source = kNoNode);

}  // namespace rrb
