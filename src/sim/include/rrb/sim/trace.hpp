#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rrb/common/runner_config.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/rng/rng.hpp"

/// \file trace.hpp
/// Per-round set-size traces averaged over trials: the raw material for the
/// phase-dynamics experiments (Lemmas 1–4, 8). For each round we record the
/// quantities the paper's analysis tracks: |I(t)|, |I+(t)|, h(t) = |H(t)|,
/// and h_i(t) = |{v in H(t) : v has >= i neighbours in H(t)}| for i = 1,4,5.
///
/// Measurement runs through the metric-observer pipeline
/// (SetSizeObserver / HSetObserver / EdgeUsageObserver in
/// rrb/metrics/observers.hpp) — this driver only schedules trials and
/// averages their per-round series. The observer migration is value-exact:
/// tests/test_metrics.cpp pins the traced numbers against values captured
/// from the pre-observer engine path.
///
/// Trials run on the deterministic parallel runner (rrb/sim/runner.hpp):
/// each trial records its own per-round trace from Rng(seed).fork(trial),
/// and the traces are averaged in trial order afterwards, so the result is
/// bit-identical for any RunnerConfig.

namespace rrb {

/// One round's set sizes (averaged over trials as doubles).
struct SetTracePoint {
  Round t = 0;
  double informed = 0.0;        ///< |I(t)|
  double newly_informed = 0.0;  ///< |I+(t)|
  double uninformed = 0.0;      ///< h(t)
  double h1 = 0.0;              ///< nodes of H(t) with >= 1 neighbour in H(t)
  double h4 = 0.0;              ///< ... >= 4 neighbours in H(t)
  double h5 = 0.0;              ///< ... >= 5 neighbours in H(t)
  double unused_edge_nodes = 0.0;  ///< |U(t)| when edge tracking is on
};

struct TraceConfig {
  int trials = 3;
  std::uint64_t seed = 0x77ace;
  ChannelConfig channel;
  RunLimits limits;
  bool track_h_sets = true;      ///< compute h1/h4/h5 (O(m) per round)
  bool track_edge_usage = false; ///< compute |U(t)| (needs edge id map)
  RunnerConfig runner;           ///< worker pool; never changes the output
};

/// Protocol factory as in trial.hpp, but graphs are provided by the caller
/// per trial via the factory to keep the probability space identical.
using TraceProtocolFactory =
    std::function<std::unique_ptr<BroadcastProtocol>(const Graph&)>;
using TraceGraphFactory = std::function<Graph(Rng&)>;

/// Run trials and average the per-round set sizes. The trace length is the
/// maximum round count across trials; trials that stopped earlier
/// contribute their final state to later rounds (the sets are monotone).
[[nodiscard]] std::vector<SetTracePoint> trace_set_sizes(
    const TraceGraphFactory& graph_factory,
    const TraceProtocolFactory& protocol_factory, const TraceConfig& config);

}  // namespace rrb
