#include "rrb/sim/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace rrb {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  double total = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    total += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = total / static_cast<double>(values.size());

  if (values.size() > 1) {
    double ss = 0.0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }

  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

}  // namespace rrb
