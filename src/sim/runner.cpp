#include "rrb/sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "rrb/common/check.hpp"
#include "rrb/telemetry/telemetry.hpp"

namespace rrb {

namespace {

/// $RRB_THREADS as a positive int, or 0 when unset/unparseable. Malformed
/// values fall back to auto-detection rather than aborting a long sweep.
int env_threads() {
  // rrb-lint: allow-next-line(no-nondeterminism-sources) — the thread count
  // only schedules work; the (seed, i) contract keeps outputs identical for
  // every value, so this env read can never reach a recorded artifact.
  const char* raw = std::getenv("RRB_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v < 1 || v > 65536) return 0;
  return static_cast<int>(v);
}

}  // namespace

ParallelRunner::ParallelRunner(RunnerConfig config) : config_(config) {
  RRB_REQUIRE(config_.threads >= 0, "RunnerConfig.threads must be >= 0");
  RRB_REQUIRE(config_.chunk >= 0, "RunnerConfig.chunk must be >= 0");
  RRB_REQUIRE(config_.batch >= 0, "RunnerConfig.batch must be >= 0");
}

int ParallelRunner::resolve_threads(const RunnerConfig& config) {
  if (config.threads > 0) return config.threads;
  if (const int env = env_threads(); env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ParallelRunner::resolved_chunk(int trials) const {
  if (config_.chunk > 0) return config_.chunk;
  // Bounded default: ~4 chunks per worker keeps dynamic load balancing
  // effective while the partial-reduction slots callers allocate per chunk
  // stay O(threads). (A per-trial default here once made a 10^6-trial
  // sweep build a million Partials — see tests/test_runner.cpp.)
  const long long slots = 4LL * resolve_threads(config_);
  const long long chunk = (static_cast<long long>(trials) + slots - 1) / slots;
  return static_cast<int>(std::max(1LL, chunk));
}

int ParallelRunner::num_chunks(int trials) const {
  // 64-bit intermediate: chunk may be INT_MAX and trials + chunk - 1
  // must not overflow.
  const long long chunk = resolved_chunk(trials);
  return static_cast<int>((trials + chunk - 1) / chunk);
}

std::pair<int, int> ParallelRunner::chunk_bounds(int index, int trials) const {
  RRB_REQUIRE(index >= 0 && index < num_chunks(trials),
              "chunk index out of range");
  const long long chunk = resolved_chunk(trials);
  const long long begin = index * chunk;
  const long long end = std::min<long long>(trials, begin + chunk);
  return {static_cast<int>(begin), static_cast<int>(end)};
}

void ParallelRunner::for_each_chunk(
    int trials, const std::function<void(int, int, int)>& fn) const {
  RRB_REQUIRE(trials >= 0, "trials must be >= 0");
  RRB_REQUIRE(fn != nullptr, "for_each_chunk needs a callable");
  if (trials == 0) return;

  const int chunks = num_chunks(trials);
  const int workers = std::min(chunks, resolve_threads(config_));

  telemetry::Span pool_span("runner", "for_each_chunk");
  if (pool_span.active())
    pool_span.set_args("{\"trials\":" + std::to_string(trials) +
                       ",\"chunks\":" + std::to_string(chunks) +
                       ",\"workers\":" + std::to_string(workers) + "}");

  if (workers <= 1) {
    for (int index = 0; index < chunks; ++index) {
      const auto [begin, end] = chunk_bounds(index, trials);
      telemetry::Span chunk_span("runner", "chunk");
      if (chunk_span.active())
        chunk_span.set_args("{\"begin\":" + std::to_string(begin) +
                            ",\"end\":" + std::to_string(end) + "}");
      fn(index, begin, end);
    }
    return;
  }

  // Dynamic scheduling: workers claim the next chunk off a shared counter.
  // Which worker runs which chunk varies run to run; the caller's
  // chunk-indexed slots make that invisible in the output.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(chunks));
  std::atomic<int> next{0};
  std::atomic<bool> abort{false};
  const auto work = [&]() {
    while (!abort.load(std::memory_order_relaxed)) {
      const int index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= chunks) return;
      const auto [begin, end] = chunk_bounds(index, trials);
      telemetry::Span chunk_span("runner", "chunk");
      if (chunk_span.active())
        chunk_span.set_args("{\"begin\":" + std::to_string(begin) +
                            ",\"end\":" + std::to_string(end) + "}");
      try {
        fn(index, begin, end);
      } catch (...) {
        errors[static_cast<std::size_t>(index)] = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();

  for (std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);
}

void ParallelRunner::for_each_trial(
    int trials, const std::function<void(int)>& fn) const {
  RRB_REQUIRE(fn != nullptr, "for_each_trial needs a callable");
  for_each_chunk(trials, [&fn](int /*index*/, int begin, int end) {
    for (int trial = begin; trial < end; ++trial) fn(trial);
  });
}

}  // namespace rrb
