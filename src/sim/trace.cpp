#include "rrb/sim/trace.hpp"

#include <algorithm>

#include "rrb/common/check.hpp"
#include "rrb/metrics/observers.hpp"
#include "rrb/phonecall/edge_ids.hpp"
#include "rrb/sim/runner.hpp"

namespace rrb {

namespace {

/// One trial's raw per-round values (not yet averaged). A pure function of
/// (config, trial index): all randomness comes from Rng(seed).fork(trial).
///
/// Measurement is entirely observer-side (rrb/metrics/observers.hpp): the
/// engine runs with an ObserverSet of SetSizeObserver (always), HSetObserver
/// and EdgeUsageObserver (each disabled via null topology pointers when the
/// config does not ask for it), and the observers' per-round series are
/// zipped into SetTracePoints afterwards. Observers draw no randomness, so
/// the trial's draw sequence — and therefore every traced value — is
/// bit-identical to the pre-observer engine path (pinned in
/// tests/test_metrics.cpp, TraceGolden).
std::vector<SetTracePoint> trace_one_trial(
    const TraceGraphFactory& graph_factory,
    const TraceProtocolFactory& protocol_factory, const TraceConfig& config,
    int trial) {
  Rng rng = Rng(config.seed).fork(static_cast<std::uint64_t>(trial));
  const Graph graph = graph_factory(rng);
  auto protocol = protocol_factory(graph);

  GraphTopology topo(graph);
  PhoneCallEngine<GraphTopology> engine(topo, config.channel, rng);

  EdgeIdMap edge_ids;
  if (config.track_edge_usage) edge_ids = build_edge_id_map(graph);

  ObserverSet observers(
      SetSizeObserver{},
      HSetObserver(config.track_h_sets ? &graph : nullptr),
      EdgeUsageObserver(config.track_edge_usage ? &graph : nullptr,
                        config.track_edge_usage ? &edge_ids : nullptr,
                        /*record_per_round=*/true));

  const NodeId source =
      static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()));
  (void)engine.run(*protocol, source, config.limits, observers);

  const auto& sizes = observers.get<SetSizeObserver>().points();
  const auto& hsets = observers.get<HSetObserver>().points();
  const auto& unused =
      observers.get<EdgeUsageObserver>().unused_edge_nodes_per_round();

  std::vector<SetTracePoint> local(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    SetTracePoint& point = local[i];
    point.t = sizes[i].t;
    point.informed = static_cast<double>(sizes[i].informed);
    point.newly_informed = static_cast<double>(sizes[i].newly_informed);
    point.uninformed = static_cast<double>(sizes[i].uninformed);
    if (config.track_h_sets) {
      point.h1 = static_cast<double>(hsets[i].h1);
      point.h4 = static_cast<double>(hsets[i].h4);
      point.h5 = static_cast<double>(hsets[i].h5);
    }
    if (config.track_edge_usage)
      point.unused_edge_nodes = static_cast<double>(unused[i]);
  }
  return local;
}

}  // namespace

std::vector<SetTracePoint> trace_set_sizes(
    const TraceGraphFactory& graph_factory,
    const TraceProtocolFactory& protocol_factory, const TraceConfig& config) {
  RRB_REQUIRE(config.trials >= 1, "need at least one trial");

  // Each trial fills its own slot; threads never touch shared state.
  std::vector<std::vector<SetTracePoint>> per_trial(
      static_cast<std::size_t>(config.trials));
  ParallelRunner runner(config.runner);
  runner.for_each_trial(config.trials, [&](int trial) {
    per_trial[static_cast<std::size_t>(trial)] =
        trace_one_trial(graph_factory, protocol_factory, config, trial);
  });

  // Sum in trial order — the same float addition order as a sequential
  // run, so the averaged trace is byte-identical for any thread count.
  std::vector<SetTracePoint> trace;
  std::vector<int> contributions;  // trials contributing to each round
  for (const std::vector<SetTracePoint>& local : per_trial) {
    if (trace.size() < local.size()) {
      trace.resize(local.size());
      contributions.resize(local.size(), 0);
    }
    for (std::size_t i = 0; i < local.size(); ++i) {
      SetTracePoint& point = trace[i];
      point.t = local[i].t;
      point.informed += local[i].informed;
      point.newly_informed += local[i].newly_informed;
      point.uninformed += local[i].uninformed;
      point.h1 += local[i].h1;
      point.h4 += local[i].h4;
      point.h5 += local[i].h5;
      point.unused_edge_nodes += local[i].unused_edge_nodes;
      ++contributions[i];
    }
  }

  for (std::size_t i = 0; i < trace.size(); ++i) {
    SetTracePoint& point = trace[i];
    const double scale =
        contributions[i] > 0 ? 1.0 / static_cast<double>(contributions[i])
                             : 1.0;
    point.informed *= scale;
    point.newly_informed *= scale;
    point.uninformed *= scale;
    point.h1 *= scale;
    point.h4 *= scale;
    point.h5 *= scale;
    point.unused_edge_nodes *= scale;
  }
  return trace;
}

}  // namespace rrb
