#include "rrb/sim/trace.hpp"

#include <algorithm>

#include "rrb/common/check.hpp"
#include "rrb/phonecall/edge_ids.hpp"
#include "rrb/sim/runner.hpp"

namespace rrb {

namespace {

/// Count, for every node of H(t), its neighbours inside H(t), and bucket
/// into h1/h4/h5. Also counts |U(t)| from the edge-usage bitmap if given.
void measure_sets(const Graph& g, std::span<const Round> informed_at,
                  const std::vector<std::uint8_t>* edge_used,
                  const EdgeIdMap* edge_ids, SetTracePoint& point) {
  const NodeId n = g.num_nodes();
  Count h1 = 0, h4 = 0, h5 = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (informed_at[v] != kNever) continue;
    NodeId inside = 0;
    for (const NodeId w : g.neighbors(v))
      if (informed_at[w] == kNever) ++inside;
    if (inside >= 1) ++h1;
    if (inside >= 4) ++h4;
    if (inside >= 5) ++h5;
  }
  point.h1 += static_cast<double>(h1);
  point.h4 += static_cast<double>(h4);
  point.h5 += static_cast<double>(h5);

  if (edge_used != nullptr && edge_ids != nullptr) {
    Count unused_nodes = 0;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId d = g.degree(v);
      bool has_unused = false;
      for (NodeId i = 0; i < d && !has_unused; ++i)
        if (!(*edge_used)[edge_ids->edge_of(v, i)]) has_unused = true;
      if (has_unused) ++unused_nodes;
    }
    point.unused_edge_nodes += static_cast<double>(unused_nodes);
  }
}

/// One trial's raw per-round values (not yet averaged). A pure function of
/// (config, trial index): all randomness comes from Rng(seed).fork(trial).
std::vector<SetTracePoint> trace_one_trial(
    const TraceGraphFactory& graph_factory,
    const TraceProtocolFactory& protocol_factory, const TraceConfig& config,
    int trial) {
  Rng rng = Rng(config.seed).fork(static_cast<std::uint64_t>(trial));
  const Graph graph = graph_factory(rng);
  auto protocol = protocol_factory(graph);

  GraphTopology topo(graph);
  PhoneCallEngine<GraphTopology> engine(topo, config.channel, rng);

  EdgeIdMap edge_ids;
  if (config.track_edge_usage) {
    edge_ids = build_edge_id_map(graph);
    engine.enable_edge_usage_tracking(edge_ids);
  }

  std::vector<SetTracePoint> local;
  Count last_informed = 1;  // the source is informed before round 1
  engine.set_round_observer([&](Round t, std::span<const Round> informed) {
    const auto idx = static_cast<std::size_t>(t - 1);
    if (local.size() <= idx) local.resize(idx + 1);
    SetTracePoint& point = local[idx];
    point.t = t;
    Count informed_count = 0;
    for (const Round r : informed)
      if (r != kNever) ++informed_count;
    point.informed += static_cast<double>(informed_count);
    point.newly_informed +=
        static_cast<double>(informed_count - last_informed);
    point.uninformed +=
        static_cast<double>(graph.num_nodes() - informed_count);
    last_informed = informed_count;
    if (config.track_h_sets || config.track_edge_usage)
      measure_sets(graph, informed,
                   config.track_edge_usage ? &engine.edge_used() : nullptr,
                   config.track_edge_usage ? &edge_ids : nullptr, point);
  });

  const NodeId source =
      static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()));
  (void)engine.run(*protocol, source, config.limits);
  return local;
}

}  // namespace

std::vector<SetTracePoint> trace_set_sizes(
    const TraceGraphFactory& graph_factory,
    const TraceProtocolFactory& protocol_factory, const TraceConfig& config) {
  RRB_REQUIRE(config.trials >= 1, "need at least one trial");

  // Each trial fills its own slot; threads never touch shared state.
  std::vector<std::vector<SetTracePoint>> per_trial(
      static_cast<std::size_t>(config.trials));
  ParallelRunner runner(config.runner);
  runner.for_each_trial(config.trials, [&](int trial) {
    per_trial[static_cast<std::size_t>(trial)] =
        trace_one_trial(graph_factory, protocol_factory, config, trial);
  });

  // Sum in trial order — the same float addition order as a sequential
  // run, so the averaged trace is byte-identical for any thread count.
  std::vector<SetTracePoint> trace;
  std::vector<int> contributions;  // trials contributing to each round
  for (const std::vector<SetTracePoint>& local : per_trial) {
    if (trace.size() < local.size()) {
      trace.resize(local.size());
      contributions.resize(local.size(), 0);
    }
    for (std::size_t i = 0; i < local.size(); ++i) {
      SetTracePoint& point = trace[i];
      point.t = local[i].t;
      point.informed += local[i].informed;
      point.newly_informed += local[i].newly_informed;
      point.uninformed += local[i].uninformed;
      point.h1 += local[i].h1;
      point.h4 += local[i].h4;
      point.h5 += local[i].h5;
      point.unused_edge_nodes += local[i].unused_edge_nodes;
      ++contributions[i];
    }
  }

  for (std::size_t i = 0; i < trace.size(); ++i) {
    SetTracePoint& point = trace[i];
    const double scale =
        contributions[i] > 0 ? 1.0 / static_cast<double>(contributions[i])
                             : 1.0;
    point.informed *= scale;
    point.newly_informed *= scale;
    point.uninformed *= scale;
    point.h1 *= scale;
    point.h4 *= scale;
    point.h5 *= scale;
    point.unused_edge_nodes *= scale;
  }
  return trace;
}

}  // namespace rrb
