#include "rrb/analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rrb {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RRB_REQUIRE(bins >= 1, "histogram needs >= 1 bin");
  RRB_REQUIRE(lo < hi, "histogram needs lo < hi");
}

void Histogram::add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::int64_t>(std::floor((value - lo_) / width));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (const double v : values) add(v);
}

std::uint64_t Histogram::count(std::size_t bin) const {
  RRB_REQUIRE(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

std::pair<double, double> Histogram::bin_bounds(std::size_t bin) const {
  RRB_REQUIRE(bin < counts_.size(), "bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + width * static_cast<double>(bin),
          lo_ + width * static_cast<double>(bin + 1)};
}

std::string Histogram::to_string(std::size_t max_bar) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto [lo, hi] = bin_bounds(b);
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(max_bar));
    os << "[" << lo << ", " << hi << ")  " << counts_[b] << "  "
       << std::string(bar, '#') << "\n";
  }
  return os.str();
}

double quantile(std::span<const double> values, double q) {
  RRB_REQUIRE(!values.empty(), "quantile of empty sample");
  RRB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::floor(pos));
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double confidence95_halfwidth(double stddev, std::size_t count) {
  RRB_REQUIRE(count >= 1, "confidence interval needs a sample");
  return 1.96 * stddev / std::sqrt(static_cast<double>(count));
}

}  // namespace rrb
