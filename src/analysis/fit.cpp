#include "rrb/analysis/fit.hpp"

#include <cmath>

#include "rrb/common/check.hpp"

namespace rrb {

namespace {

[[nodiscard]] double r_squared(std::span<const double> ys,
                               std::span<const double> predictions) {
  double mean = 0.0;
  for (const double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ss_res += (ys[i] - predictions[i]) * (ys[i] - predictions[i]);
    ss_tot += (ys[i] - mean) * (ys[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

ProportionalFit fit_proportional(std::span<const double> xs,
                                 std::span<const double> ys) {
  RRB_REQUIRE(xs.size() == ys.size(), "size mismatch");
  RRB_REQUIRE(!xs.empty(), "empty data");
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
  }
  RRB_REQUIRE(sxx > 0.0, "degenerate x data");
  ProportionalFit fit;
  fit.slope = sxy / sxx;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = fit.slope * xs[i];
  fit.r2 = r_squared(ys, pred);
  return fit;
}

AffineFit fit_affine(std::span<const double> xs, std::span<const double> ys) {
  RRB_REQUIRE(xs.size() == ys.size(), "size mismatch");
  RRB_REQUIRE(xs.size() >= 2, "need >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  RRB_REQUIRE(denom != 0.0, "degenerate x data");
  AffineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    pred[i] = fit.intercept + fit.slope * xs[i];
  fit.r2 = r_squared(ys, pred);
  return fit;
}

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys) {
  RRB_REQUIRE(xs.size() == ys.size(), "size mismatch");
  std::vector<double> lx(xs.size());
  std::vector<double> ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    RRB_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0, "fit_power needs positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const AffineFit affine = fit_affine(lx, ly);
  PowerFit fit;
  fit.exponent = affine.slope;
  fit.coefficient = std::exp(affine.intercept);
  fit.r2 = affine.r2;
  return fit;
}

double mean_consecutive_ratio(std::span<const double> ys) {
  double log_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    if (ys[i] <= 0.0 || ys[i + 1] <= 0.0) continue;
    log_sum += std::log(ys[i + 1] / ys[i]);
    ++count;
  }
  return count == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(count));
}

}  // namespace rrb
