#pragma once

#include <span>
#include <vector>

/// \file fit.hpp
/// Least-squares fitting utilities used by the experiment harness to test
/// the paper's asymptotic claims against measured data: rounds vs a·log n,
/// transmissions vs a·n·log log n (Theorems 2/3) or a·n·log n / log d
/// (Theorem 1), and growth/decay factors within phases.

namespace rrb {

/// y ≈ slope·x (through the origin). r2 is computed against the mean of y.
struct ProportionalFit {
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] ProportionalFit fit_proportional(std::span<const double> xs,
                                               std::span<const double> ys);

/// y ≈ intercept + slope·x.
struct AffineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] AffineFit fit_affine(std::span<const double> xs,
                                   std::span<const double> ys);

/// Fit y ≈ c·x^e on log–log scale; returns the exponent e, the coefficient
/// c, and the log-space R². Requires strictly positive data.
struct PowerFit {
  double exponent = 0.0;
  double coefficient = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] PowerFit fit_power(std::span<const double> xs,
                                 std::span<const double> ys);

/// Geometric mean of consecutive ratios y[i+1]/y[i]; the paper's per-round
/// growth (Lemmas 1–2) and decay (Lemma 3) factors. Zero entries are
/// skipped pairwise.
[[nodiscard]] double mean_consecutive_ratio(std::span<const double> ys);

}  // namespace rrb
