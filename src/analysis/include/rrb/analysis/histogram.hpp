#pragma once

#include <span>
#include <string>
#include <vector>

#include "rrb/common/check.hpp"

/// \file histogram.hpp
/// Small statistics helpers for experiment reporting: fixed-bin histograms
/// (degree distributions, receipt-round distributions) and quantiles /
/// normal-approximation confidence intervals over trial samples.

namespace rrb {

/// Equal-width histogram over [lo, hi]; values outside clamp to the end
/// bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  [[nodiscard]] std::size_t num_bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// [lower, upper) bounds of a bin (last bin is closed at hi).
  [[nodiscard]] std::pair<double, double> bin_bounds(std::size_t bin) const;

  /// Render as rows of "lo..hi  count  bar".
  [[nodiscard]] std::string to_string(std::size_t max_bar = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// q-quantile (0 <= q <= 1) by linear interpolation over the sorted sample.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Half-width of the 95% normal-approximation confidence interval for the
/// mean of a sample with the given standard deviation and size.
[[nodiscard]] double confidence95_halfwidth(double stddev, std::size_t count);

}  // namespace rrb
