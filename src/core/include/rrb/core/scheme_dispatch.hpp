#pragma once

#include <cmath>
#include <string>
#include <utility>

#include "rrb/common/check.hpp"
#include "rrb/core/broadcast.hpp"
#include "rrb/metrics/observer.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/median_counter.hpp"
#include "rrb/protocols/sequentialised.hpp"
#include "rrb/protocols/throttled.hpp"
#include "rrb/rng/rng.hpp"

/// \file scheme_dispatch.hpp
/// Compile-time scheme dispatch: the one switch that maps a BroadcastScheme
/// value to its concrete protocol *type* and canonical ChannelConfig, then
/// hands both to a generic visitor. broadcast(), broadcast_trials() and
/// make_scheme() all route through here, so the facade and the parallel
/// runner drive PhoneCallEngine::run() with the static protocol type — the
/// round loop inlines the protocol callbacks instead of paying a virtual
/// call per node per round. make_scheme() wraps the visited protocol in a
/// ProtocolAdapter for type-erased users; that adapter is the only place
/// the virtual layer survives.

namespace rrb {

/// Size/degree summary of a topology — everything with_scheme() needs to
/// pick a protocol variant, derive horizons and pair the canonical channel.
/// Harnesses running on something other than a Graph (the churn overlay,
/// a future distributed shard) describe their topology with a shape and
/// get the same scheme pairing the facade uses.
struct SchemeShape {
  NodeId n = 0;       ///< node count (>= 2)
  NodeId degree = 0;  ///< representative degree: the regular degree, or
                      ///< the minimum degree for irregular graphs
  double mean_degree = 0.0;  ///< mean degree (2|E|/n); 0 = assume `degree`
};

namespace detail {

/// Horizon derivation for kFixedHorizonPush. The horizon needs the degree;
/// fall back to the mean for irregular graphs (the constant C_d is flat for
/// d above ~8 anyway). The degree sum is 2|E| — self-loops contribute two
/// stubs to their node's degree and one edge to the count.
[[nodiscard]] inline Round fixed_horizon_for(const SchemeShape& shape,
                                             std::uint64_t n_estimate) {
  const double mean_degree = shape.mean_degree > 0.0
                                 ? shape.mean_degree
                                 : static_cast<double>(shape.degree);
  RRB_REQUIRE(mean_degree > 0.0,
              "fixed-horizon push needs a non-empty adjacency: a graph "
              "with no edges has no mean degree to derive a horizon from");
  const int d = std::max(3, static_cast<int>(std::lround(mean_degree)));
  return make_push_horizon(n_estimate, d);
}

}  // namespace detail

/// Build the concrete protocol and channel configuration for
/// `options.scheme` and invoke `visit(protocol, channel)` with the
/// protocol's static type. The visitor must accept any ProtocolImpl by
/// value (generic lambda); all branches must return the same type.
///
/// Throws std::logic_error for shapes with < 2 nodes, out-of-enum scheme
/// values, and option combinations the channel layer rejects.
template <typename Visitor>
decltype(auto) with_scheme(const SchemeShape& shape,
                           const BroadcastOptions& options, Visitor&& visit) {
  RRB_REQUIRE(shape.n >= 2, "broadcast needs >= 2 nodes");
  const std::uint64_t n_est =
      options.n_estimate != 0 ? options.n_estimate : shape.n;

  ChannelConfig channel;
  channel.failure_prob = options.failure_prob;

  // Facade-level channel overrides are applied on top of the scheme's
  // canonical pairing right before the visitor runs.
  auto finish = [&](auto proto) -> decltype(auto) {
    if (options.memory >= 0) channel.memory = options.memory;
    if (options.num_choices > 0) channel.num_choices = options.num_choices;
    channel.quasirandom = options.quasirandom;
    return visit(std::move(proto), channel);
  };

  switch (options.scheme) {
    case BroadcastScheme::kPush:
      return finish(PushProtocol{});
    case BroadcastScheme::kPull:
      return finish(PullProtocol{});
    case BroadcastScheme::kPushPull:
      return finish(PushPullProtocol{});
    case BroadcastScheme::kFixedHorizonPush:
      return finish(FixedHorizonPush(detail::fixed_horizon_for(shape, n_est)));
    case BroadcastScheme::kMedianCounter: {
      MedianCounterConfig cfg;
      cfg.n_estimate = n_est;
      return finish(MedianCounterProtocol(cfg));
    }
    case BroadcastScheme::kThrottledPushPull: {
      ThrottledConfig cfg;
      cfg.n_estimate = n_est;
      cfg.degree = std::max<NodeId>(2, shape.degree);
      return finish(ThrottledPushPull(cfg));
    }
    case BroadcastScheme::kFourChoice: {
      FourChoiceConfig cfg;
      cfg.n_estimate = n_est;
      cfg.alpha = options.alpha;
      channel.num_choices = 4;
      // Algorithm 1 vs 2 selected by degree, as the paper prescribes.
      if (four_choice_uses_large_degree(cfg, shape.degree))
        return finish(FourChoiceLargeDegree(cfg));
      return finish(FourChoiceBroadcast(cfg));
    }
    case BroadcastScheme::kSequentialised: {
      FourChoiceConfig cfg;
      cfg.n_estimate = n_est;
      cfg.alpha = options.alpha;
      channel.num_choices = 1;
      channel.memory = 3;
      return finish(SequentialisedFourChoice(cfg));
    }
  }
  // Reached only when `options.scheme` holds a value outside the enum
  // (e.g. a bad cast from user input): a caller error, so a precondition
  // failure rather than an internal invariant.
  detail::check_failed(
      "Precondition",
      "unknown BroadcastScheme — options.scheme does not name a "
      "scheme this library implements",
      __FILE__, __LINE__,
      "scheme value " + std::to_string(static_cast<int>(options.scheme)));
}

/// Graph convenience overload: summarise the graph into a SchemeShape and
/// dispatch. The representative degree is the regular degree when there is
/// one, the minimum degree otherwise (what the throttled and four-choice
/// branches have always keyed on).
template <typename Visitor>
decltype(auto) with_scheme(const Graph& graph, const BroadcastOptions& options,
                           Visitor&& visit) {
  RRB_REQUIRE(graph.num_nodes() >= 2, "broadcast needs >= 2 nodes");
  SchemeShape shape;
  shape.n = graph.num_nodes();
  shape.degree = graph.regular_degree().value_or(graph.min_degree());
  shape.mean_degree = static_cast<double>(2 * graph.num_edges()) /
                      static_cast<double>(graph.num_nodes());
  return with_scheme(shape, options, std::forward<Visitor>(visit));
}

/// Instrumented broadcast(): the facade run with a metric observer attached
/// (rrb/metrics/observer.hpp). Observers are read-only and draw no
/// randomness, so this returns the exact RunResult of the bare
/// broadcast(graph, source, options) — the observer is a pure side channel
/// (pinned in tests/test_metrics.cpp). Lives here rather than
/// broadcast.hpp because the template must see with_scheme().
template <MetricObserver ObserverT>
RunResult broadcast(const Graph& graph, NodeId source,
                    const BroadcastOptions& options, ObserverT& observers) {
  RRB_REQUIRE(source < graph.num_nodes(), "source out of range");
  return with_scheme(
      graph, options, [&](auto proto, const ChannelConfig& channel) {
        Rng rng(options.seed);
        GraphTopology topology(graph);
        PhoneCallEngine<GraphTopology> engine(topology, channel, rng);
        RunLimits limits;
        limits.max_rounds = options.max_rounds;
        limits.record_rounds = options.record_rounds;
        return engine.run(proto, source, limits, observers);
      });
}

}  // namespace rrb
