#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "rrb/common/runner_config.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/phonecall/protocol.hpp"
#include "rrb/phonecall/result.hpp"

/// \file broadcast.hpp
/// One-call façade over the library: pick a scheme, get a RunResult.
///
/// Each scheme bundles the protocol *and* the channel configuration it is
/// specified with — the pairing is a correctness concern, not a
/// convenience (the four-choice algorithms assume four distinct channels
/// per round; the sequentialised variant assumes one channel with three
/// rounds of memory; the classical baselines assume the one-choice phone
/// call model). Power users compose PhoneCallEngine + protocols directly;
/// this header is the 90% path.

namespace rrb {

/// The broadcast schemes the library implements.
enum class BroadcastScheme {
  kPush,               ///< classical push, oracle-terminated
  kPull,               ///< classical pull, oracle-terminated
  kPushPull,           ///< classical push&pull, oracle-terminated
  kFixedHorizonPush,   ///< self-terminating Monte Carlo push
  kMedianCounter,      ///< Karp et al. counter-based push&pull
  kThrottledPushPull,  ///< age-throttled push&pull (Elsässer-style)
  kFourChoice,         ///< the paper's Algorithm 1 / 2, picked by degree
  kSequentialised,     ///< §1.2 footnote 2: 1 choice/step + memory 3
};

/// Every scheme the library implements, in enum order. The single source of
/// truth for "all schemes": reports, the campaign spec parser and
/// simulate_cli's --list-schemes all iterate this array, so adding a scheme
/// here (plus its scheme_name/parse_scheme entries) propagates everywhere.
inline constexpr std::array<BroadcastScheme, 8> kAllSchemes = {
    BroadcastScheme::kPush,
    BroadcastScheme::kPull,
    BroadcastScheme::kPushPull,
    BroadcastScheme::kFixedHorizonPush,
    BroadcastScheme::kMedianCounter,
    BroadcastScheme::kThrottledPushPull,
    BroadcastScheme::kFourChoice,
    BroadcastScheme::kSequentialised,
};

/// Options for broadcast(). Defaults reproduce the paper's setting.
struct BroadcastOptions {
  BroadcastScheme scheme = BroadcastScheme::kFourChoice;
  std::uint64_t seed = 0xb40adca57ULL;

  /// Size estimate n̂ for schemes that need one; 0 = use the exact size.
  std::uint64_t n_estimate = 0;

  /// Algorithm 1/2 phase constant.
  double alpha = 1.5;

  /// Per-channel failure probability (the "limited communication
  /// failures" knob).
  double failure_prob = 0.0;

  /// Override the scheme's memory window (ChannelConfig::memory): how many
  /// recent partners each node avoids re-calling. -1 keeps the scheme's
  /// canonical value (3 for kSequentialised, 0 elsewhere).
  int memory = -1;

  /// Override the scheme's channels per round (ChannelConfig::num_choices):
  /// the k of a k-choice ablation (E9 sweeps k around the paper's 4). 0
  /// keeps the scheme's canonical value (4 for kFourChoice, 1 for
  /// kSequentialised and the classical baselines).
  int num_choices = 0;

  /// Quasirandom channel selection (Doerr–Friedrich–Sauerwald): nodes walk
  /// their neighbour list cyclically from a random start instead of
  /// sampling. Mutually exclusive with a positive memory window, so
  /// kSequentialised needs memory = 0 to combine with this.
  bool quasirandom = false;

  /// Safety cap on rounds; protocols terminate themselves well before this
  /// unless something is deeply wrong.
  Round max_rounds = 1 << 20;

  /// Record per-round statistics into the result.
  bool record_rounds = false;

  /// Trial count and scheduling for broadcast_trials() (rrb/sim/trial.hpp),
  /// which repeats the scheme across a worker pool; trial i re-seeds from
  /// (seed, i), so results are identical whatever `runner` says.
  /// broadcast() itself is a single run and ignores both fields.
  int trials = 1;
  RunnerConfig runner;
};

/// Broadcast a message from `source` over `graph` and return the run
/// statistics. Throws std::logic_error on invalid arguments (empty graph,
/// source out of range, bad options).
[[nodiscard]] RunResult broadcast(const Graph& graph, NodeId source,
                                  const BroadcastOptions& options = {});

/// The protocol instance and channel configuration a scheme uses —
/// exposed so harnesses can compose them with a custom engine (churn
/// hooks, failure models, observers) while keeping the canonical pairing.
struct SchemeParts {
  std::unique_ptr<BroadcastProtocol> protocol;
  ChannelConfig channel;
};
[[nodiscard]] SchemeParts make_scheme(const Graph& graph,
                                      const BroadcastOptions& options);

/// Human-readable scheme name (stable; used in reports).
[[nodiscard]] const char* scheme_name(BroadcastScheme scheme);

/// Inverse of scheme_name: the scheme for `name`, or nullopt if unknown.
/// Accepts every canonical scheme_name() spelling plus the short aliases
/// the CLI tools historically used ("median", "seq", "fixed-horizon",
/// "throttled"). Campaign spec files and simulate_cli both parse through
/// here, so scheme naming has one source of truth.
[[nodiscard]] std::optional<BroadcastScheme> parse_scheme(
    std::string_view name);

}  // namespace rrb
