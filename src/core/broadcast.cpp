#include "rrb/core/broadcast.hpp"

#include <string>

#include "rrb/common/check.hpp"
#include "rrb/core/scheme_dispatch.hpp"

namespace rrb {

const char* scheme_name(BroadcastScheme scheme) {
  switch (scheme) {
    case BroadcastScheme::kPush: return "push";
    case BroadcastScheme::kPull: return "pull";
    case BroadcastScheme::kPushPull: return "push-pull";
    case BroadcastScheme::kFixedHorizonPush: return "push/fixed-horizon";
    case BroadcastScheme::kMedianCounter: return "median-counter";
    case BroadcastScheme::kThrottledPushPull: return "throttled-push-pull";
    case BroadcastScheme::kFourChoice: return "four-choice";
    case BroadcastScheme::kSequentialised: return "four-choice/sequentialised";
  }
  // Only reachable via a cast of an out-of-range value; names feed reports
  // and file formats, so a silent "?" placeholder corrupts downstream data.
  detail::check_failed("Precondition", "scheme is a known BroadcastScheme",
                       __FILE__, __LINE__,
                       "unknown scheme value " +
                           std::to_string(static_cast<int>(scheme)));
}

std::optional<BroadcastScheme> parse_scheme(std::string_view name) {
  for (const BroadcastScheme scheme : kAllSchemes)
    if (name == scheme_name(scheme)) return scheme;
  // Short aliases kept for CLI ergonomics and backward compatibility.
  if (name == "push-pull" || name == "pushpull")
    return BroadcastScheme::kPushPull;
  if (name == "fixed-horizon") return BroadcastScheme::kFixedHorizonPush;
  if (name == "median") return BroadcastScheme::kMedianCounter;
  if (name == "throttled") return BroadcastScheme::kThrottledPushPull;
  if (name == "seq" || name == "sequentialised")
    return BroadcastScheme::kSequentialised;
  return std::nullopt;
}

SchemeParts make_scheme(const Graph& graph, const BroadcastOptions& options) {
  return with_scheme(
      graph, options, [](auto proto, const ChannelConfig& channel) {
        SchemeParts parts;
        parts.protocol =
            make_protocol<decltype(proto)>(std::move(proto));
        parts.channel = channel;
        return parts;
      });
}

RunResult broadcast(const Graph& graph, NodeId source,
                    const BroadcastOptions& options) {
  // One body for both facade paths: the bare run IS the observed run with
  // the no-op observer (whose absent hooks compile away), so the
  // observed-equals-bare guarantee cannot drift out of sync. Statically
  // dispatched either way: the engine template is instantiated per
  // concrete protocol type, so the round loop below the facade is
  // devirtualised.
  detail::NoMetrics none;
  return broadcast(graph, source, options, none);
}

}  // namespace rrb
