#include "rrb/core/broadcast.hpp"

#include <cmath>
#include <string>

#include "rrb/common/check.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/median_counter.hpp"
#include "rrb/protocols/sequentialised.hpp"
#include "rrb/protocols/throttled.hpp"

namespace rrb {

const char* scheme_name(BroadcastScheme scheme) {
  switch (scheme) {
    case BroadcastScheme::kPush: return "push";
    case BroadcastScheme::kPull: return "pull";
    case BroadcastScheme::kPushPull: return "push-pull";
    case BroadcastScheme::kFixedHorizonPush: return "push/fixed-horizon";
    case BroadcastScheme::kMedianCounter: return "median-counter";
    case BroadcastScheme::kThrottledPushPull: return "throttled-push-pull";
    case BroadcastScheme::kFourChoice: return "four-choice";
    case BroadcastScheme::kSequentialised: return "four-choice/sequentialised";
  }
  // Only reachable via a cast of an out-of-range value; names feed reports
  // and file formats, so a silent "?" placeholder corrupts downstream data.
  detail::check_failed("Precondition", "scheme is a known BroadcastScheme",
                       __FILE__, __LINE__,
                       "unknown scheme value " +
                           std::to_string(static_cast<int>(scheme)));
}

SchemeParts make_scheme(const Graph& graph, const BroadcastOptions& options) {
  RRB_REQUIRE(graph.num_nodes() >= 2, "broadcast needs >= 2 nodes");
  const std::uint64_t n_est =
      options.n_estimate != 0 ? options.n_estimate : graph.num_nodes();

  SchemeParts parts;
  parts.channel.failure_prob = options.failure_prob;

  switch (options.scheme) {
    case BroadcastScheme::kPush:
      parts.protocol = std::make_unique<PushProtocol>();
      break;
    case BroadcastScheme::kPull:
      parts.protocol = std::make_unique<PullProtocol>();
      break;
    case BroadcastScheme::kPushPull:
      parts.protocol = std::make_unique<PushPullProtocol>();
      break;
    case BroadcastScheme::kFixedHorizonPush: {
      // Horizon needs the degree; fall back to the mean for irregular
      // graphs (the constant C_d is flat for d above ~8 anyway). The
      // degree sum is 2|E| — self-loops contribute two stubs to their
      // node's degree and one edge to the count.
      const Count total = 2 * graph.num_edges();
      RRB_REQUIRE(total > 0,
                  "fixed-horizon push needs a non-empty adjacency: a graph "
                  "with no edges has no mean degree to derive a horizon from");
      const double mean_degree =
          static_cast<double>(total) / static_cast<double>(graph.num_nodes());
      const int d = std::max(3, static_cast<int>(std::lround(mean_degree)));
      parts.protocol =
          std::make_unique<FixedHorizonPush>(make_push_horizon(n_est, d));
      break;
    }
    case BroadcastScheme::kMedianCounter: {
      MedianCounterConfig cfg;
      cfg.n_estimate = n_est;
      parts.protocol = std::make_unique<MedianCounterProtocol>(cfg);
      break;
    }
    case BroadcastScheme::kThrottledPushPull: {
      ThrottledConfig cfg;
      cfg.n_estimate = n_est;
      cfg.degree = std::max<NodeId>(2, graph.min_degree());
      parts.protocol = std::make_unique<ThrottledPushPull>(cfg);
      break;
    }
    case BroadcastScheme::kFourChoice: {
      FourChoiceConfig cfg;
      cfg.n_estimate = n_est;
      cfg.alpha = options.alpha;
      // Algorithm 1 vs 2 selected by degree, as the paper prescribes.
      const NodeId d = graph.regular_degree().value_or(graph.min_degree());
      parts.protocol = make_four_choice_protocol(cfg, d);
      parts.channel.num_choices = 4;
      break;
    }
    case BroadcastScheme::kSequentialised: {
      FourChoiceConfig cfg;
      cfg.n_estimate = n_est;
      cfg.alpha = options.alpha;
      parts.protocol = std::make_unique<SequentialisedFourChoice>(cfg);
      parts.channel.num_choices = 1;
      parts.channel.memory = 3;
      break;
    }
  }
  // Reached with a null protocol only when `options.scheme` holds a value
  // outside the enum (e.g. a bad cast from user input): a caller error,
  // so a precondition failure rather than an internal invariant.
  RRB_REQUIRE(parts.protocol != nullptr,
              "unknown BroadcastScheme — options.scheme does not name a "
              "scheme this library implements");
  return parts;
}

RunResult broadcast(const Graph& graph, NodeId source,
                    const BroadcastOptions& options) {
  RRB_REQUIRE(source < graph.num_nodes(), "source out of range");
  SchemeParts parts = make_scheme(graph, options);
  Rng rng(options.seed);
  GraphTopology topology(graph);
  PhoneCallEngine<GraphTopology> engine(topology, parts.channel, rng);
  RunLimits limits;
  limits.max_rounds = options.max_rounds;
  limits.record_rounds = options.record_rounds;
  return engine.run(*parts.protocol, source, limits);
}

}  // namespace rrb
