#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

/// rrb-lint CLI. Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or
/// I/O error. See lint.hpp for the rules and the suppression syntax.

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kUsage =
    R"(usage: rrb-lint [options] [path...]

Lints C++ sources against the repository's determinism contracts.
Paths may be files or directories (searched recursively for
.cpp/.cc/.cxx/.hpp/.h); directories named 'build', '.git' or 'fixtures'
are skipped. Paths are resolved relative to --root.

options:
  --root DIR              repository root; scoping and reports use paths
                          relative to it (default: current directory)
  --as PATH               treat the single input file as repo path PATH
                          (used by the fixture self-tests to place a snippet
                          in a specific module)
  --manifest FILE         read a newline-separated file list
  --compile-commands FILE read the "file" entries of a compile_commands.json
  --rules A,B             run only the named rules
  --list-rules            print rule names and exit
  --github                also emit GitHub ::error annotations
  -q, --quiet             print findings only, no summary
  -h, --help              this text
)";

bool has_source_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

bool skipped_directory(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "build" || name == ".git" || name == "fixtures";
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else if (c != ' ') {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

/// The "file" entries of a compile_commands.json. A full JSON parser would
/// be overkill for the one key we need; compile_commands.json is
/// machine-written and the "file" values are plain paths.
std::vector<std::string> compile_commands_files(const std::string& json) {
  std::vector<std::string> out;
  static constexpr std::string_view kKey = "\"file\"";
  std::size_t pos = 0;
  while ((pos = json.find(kKey, pos)) != std::string::npos) {
    pos += kKey.size();
    pos = json.find('"', json.find(':', pos));
    if (pos == std::string::npos) break;
    const std::size_t end = json.find('"', pos + 1);
    if (end == std::string::npos) break;
    out.push_back(json.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return out;
}

std::string display_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  const fs::path chosen = (ec || rel.empty()) ? file : rel;
  return chosen.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string as_path;
  rrb::lint::Options options;
  std::vector<std::string> inputs;
  bool github = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rrb-lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : rrb::lint::rule_names()) {
        std::cout << rule << "\n";
      }
      return 0;
    } else if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--as") {
      as_path = value("--as");
    } else if (arg == "--rules") {
      options.rules = split_commas(value("--rules"));
      for (const std::string& rule : options.rules) {
        if (!rrb::lint::is_rule(rule)) {
          std::cerr << "rrb-lint: unknown rule '" << rule
                    << "' (see --list-rules)\n";
          return 2;
        }
      }
    } else if (arg == "--manifest") {
      std::ifstream in(value("--manifest"));
      if (!in) {
        std::cerr << "rrb-lint: cannot read manifest\n";
        return 2;
      }
      for (std::string line; std::getline(in, line);) {
        if (!line.empty() && line[0] != '#') inputs.push_back(line);
      }
    } else if (arg == "--compile-commands") {
      std::ifstream in(value("--compile-commands"));
      if (!in) {
        std::cerr << "rrb-lint: cannot read compile commands\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      for (std::string& file : compile_commands_files(buffer.str())) {
        inputs.push_back(std::move(file));
      }
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rrb-lint: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }

  if (inputs.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  if (!as_path.empty() && inputs.size() != 1) {
    std::cerr << "rrb-lint: --as expects exactly one input file\n";
    return 2;
  }

  // Expand inputs to the concrete file list.
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    fs::path path = input;
    if (path.is_relative()) path = root / path;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      fs::recursive_directory_iterator it(path, ec), end;
      if (ec) {
        std::cerr << "rrb-lint: cannot walk " << path << "\n";
        return 2;
      }
      for (; it != end; ++it) {
        if (it->is_directory() && skipped_directory(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && has_source_extension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::cerr << "rrb-lint: no such file or directory: " << input << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  int total_findings = 0;
  int total_suppressed = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "rrb-lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const std::string shown =
        as_path.empty() ? display_path(file, root) : as_path;
    const rrb::lint::FileReport report =
        rrb::lint::lint_file(shown, buffer.str(), options);

    total_suppressed += report.suppressed;
    total_findings += static_cast<int>(report.findings.size());
    for (const rrb::lint::Finding& f : report.findings) {
      std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      if (github) {
        std::cout << "::error file=" << f.path << ",line=" << f.line
                  << ",title=rrb-lint " << f.rule << "::" << f.message << "\n";
      }
    }
  }

  if (!quiet) {
    std::cout << "rrb-lint: " << total_findings << " finding"
              << (total_findings == 1 ? "" : "s") << " (" << total_suppressed
              << " suppressed) across " << files.size() << " file"
              << (files.size() == 1 ? "" : "s") << "\n";
  }
  return total_findings == 0 ? 0 : 1;
}
