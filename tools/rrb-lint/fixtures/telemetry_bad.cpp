// Fixture: an artifact writer that can see the telemetry headers. Linted
// with --as src/exp/artifact.cpp; expects 1 finding of
// telemetry-side-channel (the include alone is the violation — once the
// header is visible, a wall-ms or RSS value is one typo away from a
// recorded byte). Also linted with --rules telemetry-side-channel
// --as src/metrics/fixture.cpp (observer digests feed fingerprints);
// expects the same 1 finding.
#include <string>

#include "rrb/telemetry/telemetry.hpp"  // finding: side channel in artifact TU

struct ResultLine {
  std::string key;
  double rounds_mean = 0.0;

  std::string render() const {
    rrb::telemetry::Span span("artifact", "render");
    return key + " " + std::to_string(rounds_mean);
  }
};
