// Fixture: a campaign-runner translation unit using telemetry correctly —
// spans around cell computation, with the artifact bytes produced elsewhere
// (the TU is not an artifact/journal writer, so the side channel may be
// visible here). Linted with --as src/exp/campaign.cpp; expects 0 findings.
#include <cstddef>
#include <string>

#include "rrb/telemetry/telemetry.hpp"

struct CellTimer {
  void run_cell(const std::string& key, std::size_t trials) {
    rrb::telemetry::Span span("campaign", key);
    rrb::telemetry::count("cells", 1);
    total_trials_ += trials;
  }

  std::size_t total_trials_ = 0;
};
