// Fixture: draw patterns that are all properly sequenced — named locals,
// draws from *different* generators in one list, const fork() calls, and
// draws inside a lambda body passed as an argument. Linted with
// --as src/protocols/fixture.cpp; expects 0 findings.
#include <cstdint>
#include <utility>

struct Rng {
  std::uint64_t next_u64();
  std::uint64_t uniform_u64(std::uint64_t bound);
  Rng fork(std::uint64_t stream) const;  // const: not a draw
};

std::pair<std::uint64_t, std::uint64_t> edge(Rng& rng) {
  // Named locals pin the draw order — this is the fix the rule suggests.
  const std::uint64_t u = rng.next_u64();
  const std::uint64_t v = rng.next_u64();
  return std::make_pair(u, v);
}

bool streams_agree(Rng& a, Rng& b) {
  return a.next_u64() == b.next_u64();  // different generators: independent
}

Rng forked_pair(const Rng& base) {
  // fork() is const and keyed on (seed, stream): order-free by design.
  return combine(base.fork(0), base.fork(1));
}

template <typename Run>
std::uint64_t schedule(Rng& rng, Run run) {
  // The lambda *body* is sequenced by its own statements; its draws do not
  // leak into run()'s argument list.
  return run(rng.uniform_u64(8), [](Rng& local) {
    const std::uint64_t first = local.next_u64();
    return first + local.next_u64();
  });
}
