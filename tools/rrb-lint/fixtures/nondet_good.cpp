// Fixture: identifiers and types that merely *contain* banned tokens, plus
// banned tokens in comments and string literals. Linted with
// --as src/sim/fixture.cpp; expects 0 findings — a match on any of these
// would be a tokenizer bug.
#include <chrono>
#include <string>

// Comment mentions rand(), time(nullptr) and std::random_device — ignored.

struct TimePoint {
  using clock_type = std::chrono::steady_clock;  // the type, not ::now()
  long informed_time(int round) { return round; }     // ..._time( is not time(
  long runtime(int rounds) { return rounds * 2; }     // ...time( is not time(
  long lifetime(int rounds) { return rounds + 1; }
};

std::string describe() {
  return "uses time() and getenv() and clock() only inside this string";
}

long overclock(long hz) { return hz * 2; }  // ...clock is not clock()
long brand(long x) { return x; }            // ...rand( is not rand()
