// Fixture: all three suppression forms silence a real finding when the rule
// name matches. Linted with --as src/sim/fixture.cpp; expects 0 findings
// and 3 suppressions.
#include <chrono>
#include <cstdlib>

const char* knob() {
  // rrb-lint: allow-next-line(no-nondeterminism-sources) — fixture: config
  // read that can never reach a recorded artifact.
  return std::getenv("RRB_FIXTURE");
}

long stamp() {
  return time(nullptr);  // rrb-lint: allow(no-nondeterminism-sources) — fixture
}

/* rrb-lint: allow-file(no-unordered-iteration) — fixture: file-level allow
   counts as a suppression even though the rule has exactly one hit here. */
#include <unordered_set>
void drain(std::unordered_set<int>& seen) {
  for (int v : seen) (void)v;
}
