// Fixture: includes that follow the module DAG. core sits above protocols,
// metrics, phonecall, graph, rng and common, and analysis arrives
// transitively through metrics — all of these are legal, as are system
// headers and the module's own headers. Linted with
// --as src/core/fixture.cpp; expects 0 findings.
#include <vector>

#include "rrb/analysis/histogram.hpp"  // transitive via metrics: allowed
#include "rrb/common/types.hpp"
#include "rrb/core/broadcast.hpp"  // own module
#include "rrb/graph/graph.hpp"
#include "rrb/metrics/observer.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/rng/rng.hpp"

namespace rrb {
void fixture();
}
