// Fixture: iterating unordered containers in a record-path module — the
// iteration order depends on hash seeding and load factors, so anything
// written in loop order forks recorded artifacts. Linted with
// --as src/core/fixture.cpp; expects 3 findings of no-unordered-iteration.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Tally {
  std::unordered_map<std::uint64_t, int> counts;
  std::unordered_set<std::uint64_t> seen_;
};

std::vector<int> snapshot(const Tally& tally) {
  std::vector<int> out;
  for (const auto& entry : tally.counts) {  // finding: range-for over map
    out.push_back(entry.second);
  }
  return out;
}

std::size_t drain(Tally& tally) {
  std::size_t n = 0;
  for (auto it = tally.seen_.begin(); it != tally.seen_.end(); ++it) {
    ++n;  // finding above: iterator loop over unordered set
  }
  for (std::uint64_t v : tally.seen_) n += v;  // finding: range-for over set
  return n;
}
