// Fixture: two draws from one generator inside a single argument list.
// Argument evaluation order is unspecified in C++, so the order the draws
// hit the stream differs between compilers — the recorded output would not
// be reproducible. Linted with --as src/protocols/fixture.cpp; expects 3
// findings of no-unsequenced-rng-args.
#include <cstdint>
#include <utility>

struct Rng {
  std::uint64_t next_u64();
  std::uint64_t uniform_u64(std::uint64_t bound);
  bool bernoulli(double p);
};

std::pair<std::uint64_t, std::uint64_t> edge(Rng& rng) {
  // finding: both ends drawn in one argument list
  return std::make_pair(rng.next_u64(), rng.next_u64());
}

std::uint64_t mix(Rng& rng, std::uint64_t (*combine)(std::uint64_t, bool)) {
  // finding: draws nested at different depths still share combine's list
  return combine(rng.uniform_u64(1 + rng.next_u64()), rng.bernoulli(0.5));
}
