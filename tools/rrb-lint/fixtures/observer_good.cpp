// Fixture: a well-behaved observer — reads the hook stream, accumulates
// into its own state, never touches randomness or the engine. Linted with
// --as src/metrics/fixture.cpp; expects 0 findings.
#include <cstdint>
#include <vector>

struct CountingObserver {
  const char* name() const { return "counting"; }

  void on_round_begin(int round) { last_round_ = round; }
  void on_transmission() { ++transmissions_; }

  int last_round_ = 0;
  std::uint64_t transmissions_ = 0;
  std::vector<int> per_round_;
};
