// Fixture: a suppression only silences the rule it names — naming a
// different rule leaves the finding live. Linted with
// --as src/sim/fixture.cpp; expects 1 finding of no-nondeterminism-sources.
#include <ctime>

long stamp() {
  return time(nullptr);  // rrb-lint: allow(module-layering) — wrong rule
}
