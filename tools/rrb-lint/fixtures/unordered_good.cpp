// Fixture: order-insensitive unordered-container use (lookups, counts,
// inserts) and iteration over *ordered* containers are all fine. Linted
// with --as src/core/fixture.cpp; expects 0 findings.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Tally {
  std::unordered_map<std::uint64_t, int> counts;
  std::unordered_set<std::uint64_t> seen;
};

int lookups(Tally& tally, std::uint64_t key) {
  tally.seen.insert(key);
  ++tally.counts[key];  // operator[] is a lookup, not an iteration
  return tally.counts.count(key) != 0 ? tally.counts[key] : 0;
}

int ordered_iteration(const std::map<std::uint64_t, int>& sorted,
                      const std::vector<int>& dense) {
  int total = 0;
  for (const auto& [key, value] : sorted) total += value;  // std::map: ordered
  for (const int v : dense) total += v;
  return total;
}
