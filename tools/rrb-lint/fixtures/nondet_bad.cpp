// Fixture: every banned nondeterminism source, in a record-path module.
// Linted with --as src/sim/fixture.cpp; expects 6 findings of
// no-nondeterminism-sources (one per banned construct below).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned seed_from_entropy() {
  std::random_device entropy;  // finding: random_device
  return entropy();
}

long stamp() {
  return time(nullptr);  // finding: time()
}

long ticks() {
  return clock();  // finding: clock()
}

double wall_ms() {
  const auto t = std::chrono::steady_clock::now();  // finding: ::now()
  return static_cast<double>(t.time_since_epoch().count());
}

int weak_draw() {
  return rand();  // finding: rand()
}

const char* knob() {
  return std::getenv("RRB_FIXTURE");  // finding: getenv()
}
