// Fixture: wall-clock reads are fine outside the record-path modules —
// benches and the analysis/graph layers time themselves freely. Linted with
// --as bench/fixture.cpp; expects 0 findings.
#include <chrono>
#include <cstdlib>

double bench_elapsed_ms() {
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

const char* bench_output_dir() { return std::getenv("RRB_BENCH_JSON_DIR"); }
