// Fixture: an observer translation unit that sees the RNG — three distinct
// violations of the observer read-only contract. Linted with
// --as src/metrics/fixture.cpp; expects 4 findings of observer-read-only
// (rng include, engine include, Rng mention, draw call).
#include "rrb/phonecall/engine.hpp"  // finding: mutating engine header
#include "rrb/rng/rng.hpp"           // finding: observers may not see the RNG

struct JitterObserver {
  const char* name() const { return "jitter"; }

  void on_round_begin(int round) {
    rrb::Rng rng(static_cast<unsigned long long>(round));  // finding: Rng
    jitter_ = rng.uniform_double();  // finding: draw call in a hook
  }

  double jitter_ = 0.0;
};
