// Fixture: back-edges in the module DAG — rng is near the bottom of the
// layering (it may depend only on common), so including graph or exp from
// it inverts the architecture; a typo'd module name is caught too. Linted
// with --as src/rng/fixture.cpp; expects 3 findings of module-layering.
#include "rrb/common/check.hpp"       // ok: declared dependency
#include "rrb/exp/campaign.hpp"       // finding: exp is eight layers up
#include "rrb/graph/graph.hpp"        // finding: back-edge into graph
#include "rrb/simulation/trial.hpp"   // finding: unknown module 'simulation'

namespace rrb {
void fixture();
}
