#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file lint.hpp
/// rrb-lint: source-level static analysis for the repository's determinism
/// contracts (see ROADMAP.md "Persistent invariants").
///
/// The library's output contract is bit-identical reproduction: every
/// recorded number is a pure function of (seed, parameters) because all
/// randomness flows through rrb::Rng streams keyed on (seed, trial) and the
/// engine's draw order is frozen by golden tests. The golden tests tell you
/// *that* a contract broke; this tool tells you *where*, at lint time,
/// before a stray wall-clock read or unordered-container iteration forks a
/// recorded experiment. Each contract is a named rule; findings can be
/// suppressed per line with a justifying comment:
///
///   // rrb-lint: allow(<rule>[, <rule>...]) — <why this is safe>
///   // rrb-lint: allow-next-line(<rule>) — <why>   (suppresses the line below)
///   // rrb-lint: allow-file(<rule>) — <why>        (suppresses the whole file)
///
/// Rules (scopes in lint.cpp):
///   no-nondeterminism-sources   no random_device/time/clock/::now/rand/
///                               getenv in record-path modules
///   no-unordered-iteration      no iteration over std::unordered_* in
///                               record-path modules (order leaks into
///                               artifacts)
///   observer-read-only          metric-observer TUs draw no randomness and
///                               keep away from the mutating engine header
///   no-unsequenced-rng-args     no two draws from one generator inside a
///                               single argument list (evaluation order is
///                               unspecified, so the draw stream would
///                               depend on the compiler)
///   module-layering             #include edges must follow the module DAG
///                               declared in src/*/CMakeLists.txt
///   telemetry-side-channel      rrb/telemetry/ headers are banned from
///                               artifact/record-writing TUs (metrics, and
///                               the exp artifact/journal writers) — timing
///                               and RSS values can never reach recorded
///                               bytes

namespace rrb::lint {

/// One rule violation at a specific source line.
struct Finding {
  std::string path;     ///< repo-relative display path
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule name, e.g. "module-layering"
  std::string message;  ///< human-readable description
};

/// Result of linting one file.
struct FileReport {
  std::vector<Finding> findings;
  int suppressed = 0;  ///< findings silenced by allow() comments
};

/// Which rules to run; empty means all.
struct Options {
  std::vector<std::string> rules;
};

/// Names of all registered rules, in canonical order.
const std::vector<std::string>& rule_names();

/// True iff `name` is a registered rule.
bool is_rule(std::string_view name);

/// Lint one translation unit. `display_path` is the repo-relative path used
/// for module scoping and reporting (fixtures pass a virtual path via the
/// CLI's --as flag); `content` is the file's text.
FileReport lint_file(std::string_view display_path, std::string_view content,
                     const Options& options);

}  // namespace rrb::lint
