#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <set>
#include <utility>

namespace rrb::lint {

namespace {

// ---------------------------------------------------------------------------
// Small lexical helpers
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool space_char(char c) { return c == ' ' || c == '\t'; }

std::string_view trim(std::string_view s) {
  while (!s.empty() && (space_char(s.front()) || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (space_char(s.back()) || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Scrubbing: blank comments and string/char literals (preserving length and
// newlines, so offsets and line numbers survive), and collect suppression
// directives found in comments along the way.
// ---------------------------------------------------------------------------

struct Scrubbed {
  std::string text;  // same length as the input; literals/comments -> ' '
  std::map<int, std::set<std::string>> line_allow;  // 1-based line -> rules
  std::set<std::string> file_allow;
  // allow-next-line directives, resolved after the scrub: the target is the
  // next line that carries code, so a multi-line justification comment may
  // sit between the directive and the code it covers.
  std::vector<std::pair<int, std::string>> next_line_pending;
};

/// Parse `rrb-lint: allow(...)` / `allow-next-line(...)` / `allow-file(...)`
/// directives out of one comment's text. `line` is the line the directive
/// text sits on.
void parse_directives(std::string_view comment, int line, Scrubbed& out) {
  static constexpr std::string_view kTag = "rrb-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    std::size_t i = pos + kTag.size();
    while (i < comment.size() && space_char(comment[i])) ++i;
    std::size_t verb_begin = i;
    while (i < comment.size() && (ident_char(comment[i]) || comment[i] == '-'))
      ++i;
    const std::string_view verb = comment.substr(verb_begin, i - verb_begin);
    while (i < comment.size() && space_char(comment[i])) ++i;
    if (i >= comment.size() || comment[i] != '(') {
      pos = i;
      continue;
    }
    ++i;
    std::vector<std::string> rules;
    std::string current;
    for (; i < comment.size() && comment[i] != ')'; ++i) {
      const char c = comment[i];
      if (ident_char(c) || c == '-') {
        current.push_back(c);
      } else if (!current.empty()) {
        rules.push_back(std::move(current));
        current.clear();
      }
    }
    if (!current.empty()) rules.push_back(std::move(current));
    for (std::string& rule : rules) {
      if (!is_rule(rule)) continue;  // unknown rules never suppress anything
      if (verb == "allow") {
        out.line_allow[line].insert(std::move(rule));
      } else if (verb == "allow-next-line") {
        out.next_line_pending.emplace_back(line, std::move(rule));
      } else if (verb == "allow-file") {
        out.file_allow.insert(std::move(rule));
      }
    }
    pos = i;
  }
}

Scrubbed scrub(std::string_view content) {
  Scrubbed out;
  out.text.assign(content.size(), ' ');
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();

  auto copy_newline = [&](std::size_t at) {
    out.text[at] = '\n';
    ++line;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      copy_newline(i);
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t begin = i;
      while (i < n && content[i] != '\n') ++i;
      parse_directives(content.substr(begin, i - begin), line, out);
      continue;  // the '\n' (if any) is handled by the main loop
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t begin = i;
      int dir_line = line;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') {
          parse_directives(content.substr(begin, i - begin), dir_line, out);
          copy_newline(i);
          begin = i + 1;
          dir_line = line;
        }
        ++i;
      }
      if (i + 1 < n) i += 2;  // consume "*/"
      parse_directives(content.substr(begin, i - begin), dir_line, out);
      continue;
    }
    if (c == '"') {
      // Raw string literal? Look back for the R prefix (R"delim( ... )delim").
      const bool raw = i > 0 && content[i - 1] == 'R' &&
                       (i < 2 || !ident_char(content[i - 2]));
      if (raw) {
        std::size_t j = i + 1;
        while (j < n && content[j] != '(') ++j;
        const std::string delim =
            std::string(")") + std::string(content.substr(i + 1, j - i - 1)) +
            "\"";
        const std::size_t close = content.find(delim, j);
        const std::size_t end =
            close == std::string_view::npos ? n : close + delim.size();
        for (std::size_t k = i; k < end; ++k) {
          if (content[k] == '\n') copy_newline(k);
        }
        i = end;
        continue;
      }
      ++i;
      while (i < n && content[i] != '"' && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n && content[i] == '"') ++i;
      continue;
    }
    if (c == '\'') {
      // A quote right after an identifier character is a digit separator
      // (1'000'000), not a character literal.
      if (i > 0 && ident_char(content[i - 1])) {
        ++i;
        continue;
      }
      ++i;
      while (i < n && content[i] != '\'' && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n && content[i] == '\'') ++i;
      continue;
    }
    out.text[i] = c;
    ++i;
  }

  // Resolve allow-next-line targets: skip past blank and comment-only lines
  // (all-space after scrubbing) to the next line with code on it.
  if (!out.next_line_pending.empty()) {
    std::vector<std::size_t> starts = {0};
    for (std::size_t k = 0; k < out.text.size(); ++k) {
      if (out.text[k] == '\n') starts.push_back(k + 1);
    }
    auto line_blank = [&](int l) {  // 1-based; true past EOF ends the walk
      if (l < 1 || static_cast<std::size_t>(l) > starts.size()) return false;
      const std::size_t begin = starts[static_cast<std::size_t>(l) - 1];
      const std::size_t end = static_cast<std::size_t>(l) < starts.size()
                                  ? starts[static_cast<std::size_t>(l)] - 1
                                  : out.text.size();
      return trim(std::string_view(out.text).substr(begin, end - begin))
          .empty();
    };
    for (auto& [directive_line, rule] : out.next_line_pending) {
      int target = directive_line + 1;
      while (line_blank(target)) ++target;
      out.line_allow[target].insert(std::move(rule));
    }
    out.next_line_pending.clear();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Path / module scoping
// ---------------------------------------------------------------------------

/// The rrb module a path belongs to ("core" for src/core/...), or "" when
/// the file is not inside a src/<module>/ directory.
std::string module_of(std::string_view path) {
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = path.find("src/", pos);
    if (hit == std::string_view::npos) return {};
    if (hit == 0 || path[hit - 1] == '/') {
      const std::size_t begin = hit + 4;
      const std::size_t end = path.find('/', begin);
      if (end == std::string_view::npos) return {};
      return std::string(path.substr(begin, end - begin));
    }
    pos = hit + 4;
  }
}

/// Modules whose draws and iteration order feed recorded artifacts: the
/// engine stack, its protocols and RNG, the trial/campaign runners, and the
/// observer pipeline. graph/analysis/p2p are reachable only through these.
bool record_path_module(const std::string& module) {
  static const std::set<std::string> kModules = {
      "core", "phonecall", "protocols", "rng",     "sim",
      "metrics", "exp",    "bigtopo"};
  return kModules.count(module) != 0;
}

// Direct module dependencies — MUST mirror the DEPENDS lists declared in
// src/*/CMakeLists.txt (the build graph is the source of truth; this table
// lets the lint name the offending include line). The self-test fixtures
// exercise representative edges; if the build graph changes, update this
// table in the same commit.
const std::map<std::string, std::vector<std::string>>& module_deps() {
  static const std::map<std::string, std::vector<std::string>> kDeps = {
      {"common", {}},
      {"rng", {"common"}},
      {"analysis", {"common"}},
      {"telemetry", {"common"}},
      {"graph", {"common", "rng"}},
      {"bigtopo", {"common", "graph", "rng", "telemetry"}},
      {"phonecall", {"common", "graph", "rng", "telemetry"}},
      {"protocols", {"common", "phonecall"}},
      {"metrics", {"analysis", "common", "graph", "phonecall"}},
      {"core", {"common", "graph", "metrics", "phonecall", "protocols", "rng"}},
      {"p2p", {"common", "graph", "protocols", "rng"}},
      {"sim",
       {"common", "core", "graph", "metrics", "phonecall", "rng", "telemetry"}},
      {"exp",
       {"bigtopo", "common", "core", "graph", "metrics", "p2p", "phonecall",
        "protocols", "rng", "sim", "telemetry"}},
  };
  return kDeps;
}

/// Transitive closure of module_deps() (module dependencies are PUBLIC in
/// CMake, so a module may include headers of its whole dependency cone).
const std::map<std::string, std::set<std::string>>& module_closure() {
  static const std::map<std::string, std::set<std::string>> kClosure = [] {
    std::map<std::string, std::set<std::string>> closure;
    // Iterate to a fixed point; the DAG is tiny.
    for (const auto& [mod, deps] : module_deps()) {
      closure[mod] = {deps.begin(), deps.end()};
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (auto& [mod, reach] : closure) {
        const std::set<std::string> snapshot = reach;
        for (const std::string& dep : snapshot) {
          for (const std::string& indirect : closure[dep]) {
            changed |= reach.insert(indirect).second;
          }
        }
      }
    }
    return closure;
  }();
  return kClosure;
}

// ---------------------------------------------------------------------------
// Include-directive extraction (from the raw text: the path inside the
// quotes is exactly what scrubbing blanks out)
// ---------------------------------------------------------------------------

struct Include {
  int line;
  std::string path;  // between the quotes / angle brackets
};

std::vector<Include> collect_includes(std::string_view content) {
  std::vector<Include> out;
  int line = 1;
  std::size_t i = 0;
  while (i < content.size()) {
    const std::size_t eol = content.find('\n', i);
    const std::size_t len =
        (eol == std::string_view::npos ? content.size() : eol) - i;
    std::string_view text = content.substr(i, len);
    std::string_view rest = trim(text);
    if (!rest.empty() && rest.front() == '#') {
      rest.remove_prefix(1);
      rest = trim(rest);
      if (rest.starts_with("include")) {
        rest.remove_prefix(7);
        rest = trim(rest);
        if (!rest.empty() && (rest.front() == '"' || rest.front() == '<')) {
          const char close = rest.front() == '"' ? '"' : '>';
          rest.remove_prefix(1);
          const std::size_t end = rest.find(close);
          if (end != std::string_view::npos) {
            out.push_back({line, std::string(rest.substr(0, end))});
          }
        }
      }
    }
    if (eol == std::string_view::npos) break;
    i = eol + 1;
    ++line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Finding emission with suppression accounting
// ---------------------------------------------------------------------------

class Sink {
 public:
  Sink(std::string_view path, const Scrubbed& scrubbed, const Options& options,
       FileReport& report)
      : path_(path), scrubbed_(scrubbed), report_(report) {
    for (const std::string& rule : options.rules) enabled_.insert(rule);
  }

  [[nodiscard]] bool enabled(std::string_view rule) const {
    return enabled_.empty() || enabled_.count(std::string(rule)) != 0;
  }

  void emit(int line, std::string_view rule, std::string message) {
    if (!enabled(rule)) return;
    if (scrubbed_.file_allow.count(std::string(rule)) != 0) {
      ++report_.suppressed;
      return;
    }
    if (const auto it = scrubbed_.line_allow.find(line);
        it != scrubbed_.line_allow.end() &&
        it->second.count(std::string(rule)) != 0) {
      ++report_.suppressed;
      return;
    }
    report_.findings.push_back(
        {std::string(path_), line, std::string(rule), std::move(message)});
  }

 private:
  std::string_view path_;
  const Scrubbed& scrubbed_;
  FileReport& report_;
  std::set<std::string> enabled_;
};

int line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                                           static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

/// True when `text[pos..pos+token)` is `token` with no identifier character
/// butting against either side.
bool token_at(std::string_view text, std::size_t pos, std::string_view token) {
  if (text.substr(pos, token.size()) != token) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t after = pos + token.size();
  return after >= text.size() || !ident_char(text[after]);
}

/// Position of the next non-space character at or after `pos` (same line or
/// beyond; lexers may split a call across lines).
std::size_t skip_space(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         (space_char(text[pos]) || text[pos] == '\n')) {
    ++pos;
  }
  return pos;
}

// ---------------------------------------------------------------------------
// Rule: no-nondeterminism-sources
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleNondet = "no-nondeterminism-sources";

void rule_nondeterminism(const Scrubbed& s, const std::string& module,
                         Sink& sink) {
  if (!record_path_module(module)) return;
  const std::string_view text = s.text;

  struct BannedCall {
    std::string_view token;
    std::string_view what;
  };
  static constexpr std::array<BannedCall, 5> kCalls = {{
      {"time", "wall-clock read 'time()'"},
      {"clock", "processor-clock read 'clock()'"},
      {"rand", "C PRNG 'rand()' (all randomness must flow through rrb::Rng)"},
      {"srand", "C PRNG seeding 'srand()'"},
      {"getenv", "environment read 'getenv()'"},
  }};

  for (std::size_t i = 0; i < text.size(); ++i) {
    if (token_at(text, i, "random_device")) {
      sink.emit(line_of(text, i), kRuleNondet,
                "std::random_device in record-path module '" + module +
                    "': draws must come from rrb::Rng streams keyed on "
                    "(seed, trial)");
      i += 12;
      continue;
    }
    if (text.compare(i, 5, "::now") == 0 &&
        (i + 5 >= text.size() || !ident_char(text[i + 5]))) {
      const std::size_t paren = skip_space(text, i + 5);
      if (paren < text.size() && text[paren] == '(') {
        sink.emit(line_of(text, i), kRuleNondet,
                  "clock read '::now()' in record-path module '" + module +
                      "': wall-clock values must never reach recorded "
                      "artifacts");
      }
      i += 4;
      continue;
    }
    for (const BannedCall& call : kCalls) {
      if (!token_at(text, i, call.token)) continue;
      const std::size_t paren = skip_space(text, i + call.token.size());
      if (paren < text.size() && text[paren] == '(') {
        sink.emit(line_of(text, i), kRuleNondet,
                  std::string(call.what) + " in record-path module '" +
                      module + "'");
        i += call.token.size() - 1;
      }
      break;  // tokens cannot overlap: at most one can match at `i`
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-unordered-iteration
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleUnordered = "no-unordered-iteration";

/// Skip a balanced <...> starting at `pos` (which must index '<'); returns
/// the index one past the matching '>'. Good enough for declarations —
/// comparison operators do not appear between a container name and its
/// argument list.
std::size_t skip_angles(std::string_view text, std::size_t pos) {
  int depth = 0;
  while (pos < text.size()) {
    if (text[pos] == '<') ++depth;
    if (text[pos] == '>' && --depth == 0) return pos + 1;
    ++pos;
  }
  return pos;
}

/// Names declared in this file with an unordered container type, e.g.
/// `std::unordered_map<K, V> index;` or a member `..._set<T> seen_;`.
std::set<std::string> unordered_decl_names(std::string_view text) {
  static constexpr std::array<std::string_view, 4> kContainers = {
      "unordered_map", "unordered_multimap", "unordered_set",
      "unordered_multiset"};
  std::set<std::string> names;
  for (std::size_t i = 0; i < text.size(); ++i) {
    for (const std::string_view container : kContainers) {
      if (!token_at(text, i, container)) continue;
      std::size_t j = skip_space(text, i + container.size());
      if (j < text.size() && text[j] == '<') j = skip_angles(text, j);
      j = skip_space(text, j);
      while (j < text.size() && (text[j] == '&' || text[j] == '*')) {
        j = skip_space(text, j + 1);
      }
      std::size_t begin = j;
      while (j < text.size() && ident_char(text[j])) ++j;
      if (j > begin) names.insert(std::string(text.substr(begin, j - begin)));
      i = j > i ? j - 1 : i;
      break;
    }
  }
  return names;
}

/// The trailing identifier of an expression like `state.seen_` or `*map`.
std::string_view trailing_ident(std::string_view expr) {
  expr = trim(expr);
  std::size_t end = expr.size();
  while (end > 0 && !ident_char(expr[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && ident_char(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

void rule_unordered_iteration(const Scrubbed& s, const std::string& module,
                              Sink& sink) {
  if (!record_path_module(module)) return;
  const std::string_view text = s.text;
  const std::set<std::string> names = unordered_decl_names(text);

  for (std::size_t i = 0; i < text.size(); ++i) {
    // Range-for whose range is (or ends in) an unordered container.
    if (token_at(text, i, "for")) {
      std::size_t paren = skip_space(text, i + 3);
      if (paren >= text.size() || text[paren] != '(') continue;
      int depth = 0;
      std::size_t colon = std::string_view::npos;
      std::size_t close = paren;
      for (std::size_t j = paren; j < text.size(); ++j) {
        const char c = text[j];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
          if (--depth == 0) {
            close = j;
            break;
          }
        }
        if (c == ':' && depth == 1 && colon == std::string_view::npos) {
          const bool scope = (j + 1 < text.size() && text[j + 1] == ':') ||
                             (j > 0 && text[j - 1] == ':');
          if (!scope) colon = j;
        }
      }
      if (colon == std::string_view::npos) continue;
      const std::string_view range =
          trim(text.substr(colon + 1, close - colon - 1));
      const std::string_view name = trailing_ident(range);
      const bool unordered_name = names.count(std::string(name)) != 0;
      if (unordered_name || range.find("unordered_") != std::string_view::npos) {
        sink.emit(line_of(text, i), kRuleUnordered,
                  "range-for over unordered container '" + std::string(name) +
                      "' in record-path module '" + module +
                      "': iteration order can leak into recorded output — "
                      "iterate a sorted copy or an ordered container");
      }
      i = close;
      continue;
    }
  }

  // Iterator loops: `name.begin()` / `name->cbegin()` on an unordered name.
  static constexpr std::array<std::string_view, 2> kBegin = {"begin", "cbegin"};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '.' && !(text[i] == '>' && i > 0 && text[i - 1] == '-')) {
      continue;
    }
    const std::size_t after = i + 1;
    for (const std::string_view b : kBegin) {
      if (text.compare(after, b.size(), b) != 0) continue;
      const std::size_t paren = skip_space(text, after + b.size());
      if (paren >= text.size() || text[paren] != '(') continue;
      const std::size_t recv_end = text[i] == '.' ? i : i - 1;
      const std::string_view name =
          trailing_ident(text.substr(0, recv_end));
      if (names.count(std::string(name)) != 0) {
        sink.emit(line_of(text, i), kRuleUnordered,
                  "iterator over unordered container '" + std::string(name) +
                      "' in record-path module '" + module +
                      "': iteration order can leak into recorded output");
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: observer-read-only and no-unsequenced-rng-args share the RNG draw
// vocabulary (the mutating methods of rrb::Rng; fork() and seed() are const
// and excluded on purpose).
// ---------------------------------------------------------------------------

constexpr std::array<std::string_view, 9> kDrawMethods = {
    "next_u64",        "uniform_u64", "uniform_int",
    "uniform_double",  "bernoulli",   "shuffle",
    "sample_distinct", "sample_distinct_small", "split"};

/// If `pos` indexes the start of a draw-method name preceded by '.' or '->'
/// and followed by '(', return that name; otherwise "".
std::string_view draw_method_at(std::string_view text, std::size_t pos) {
  if (pos == 0) return {};
  const bool dot = text[pos - 1] == '.';
  const bool arrow = pos >= 2 && text[pos - 1] == '>' && text[pos - 2] == '-';
  if (!dot && !arrow) return {};
  for (const std::string_view method : kDrawMethods) {
    if (text.compare(pos, method.size(), method) != 0) continue;
    const std::size_t after = pos + method.size();
    if (after < text.size() && ident_char(text[after])) continue;
    if (const std::size_t paren = skip_space(text, after);
        paren < text.size() && text[paren] == '(') {
      return method;
    }
  }
  return {};
}

constexpr std::string_view kRuleObserver = "observer-read-only";

void rule_observer_read_only(std::string_view content, const Scrubbed& s,
                             const std::string& module, Sink& sink) {
  if (module != "metrics") return;

  for (const Include& inc : collect_includes(content)) {
    if (inc.path.starts_with("rrb/rng/")) {
      sink.emit(inc.line, kRuleObserver,
                "observer translation unit includes '" + inc.path +
                    "': observers are read-only and may not see the RNG at "
                    "all (ROADMAP observer read-only contract)");
    } else if (inc.path == "rrb/phonecall/engine.hpp") {
      sink.emit(inc.line, kRuleObserver,
                "observer translation unit includes the mutating engine "
                "header '" +
                    inc.path +
                    "': observers consume the hook stream (result.hpp "
                    "types), they never touch the engine");
    }
  }

  const std::string_view text = s.text;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (token_at(text, i, "Rng")) {
      sink.emit(line_of(text, i), kRuleObserver,
                "'Rng' mentioned in an observer translation unit: observers "
                "draw no randomness (a draw in a hook would shift the "
                "engine's stream and invalidate every recorded experiment)");
      i += 2;
      continue;
    }
    if (const std::string_view method = draw_method_at(text, i);
        !method.empty()) {
      sink.emit(line_of(text, i), kRuleObserver,
                "draw call '." + std::string(method) +
                    "()' in an observer translation unit: observer hooks are "
                    "read-only");
      i += method.size() - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-unsequenced-rng-args
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleUnsequenced = "no-unsequenced-rng-args";

/// The receiver expression of a method call, scanning backwards from the
/// '.' / '->' at `op_end` (exclusive): identifier chains with member access
/// and balanced ()/[] groups, e.g. `state.rngs[i]` or `trial_rng`.
std::string receiver_before(std::string_view text, std::size_t op_begin) {
  std::size_t i = op_begin;
  while (i > 0) {
    const char c = text[i - 1];
    if (ident_char(c) || c == '.') {
      --i;
      continue;
    }
    if (c == '>' && i >= 2 && text[i - 2] == '-') {
      i -= 2;
      continue;
    }
    if (c == ':') {
      --i;
      continue;
    }
    if (c == ')' || c == ']') {
      const char open = c == ')' ? '(' : '[';
      int depth = 0;
      while (i > 0) {
        const char d = text[i - 1];
        if (d == c) ++depth;
        if (d == open && --depth == 0) {
          --i;
          break;
        }
        --i;
      }
      continue;
    }
    break;
  }
  std::string receiver(trim(text.substr(i, op_begin - i)));
  // Normalise whitespace inside the receiver so "a . b" == "a.b".
  receiver.erase(std::remove_if(receiver.begin(), receiver.end(),
                                [](char c) {
                                  return space_char(c) || c == '\n';
                                }),
                 receiver.end());
  return receiver;
}

void rule_unsequenced_rng_args(const Scrubbed& s, Sink& sink) {
  const std::string_view text = s.text;

  struct Frame {
    char kind;  // '(', '[' or '{'
    std::map<std::string, int> draws;  // receiver -> line of first draw
  };
  std::vector<Frame> stack;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      stack.push_back({c, {}});
      continue;
    }
    if (c == ')' || c == ']' || c == '}') {
      const char open = c == ')' ? '(' : (c == ']' ? '[' : '{');
      while (!stack.empty()) {
        const char kind = stack.back().kind;
        stack.pop_back();
        if (kind == open) break;
      }
      continue;
    }
    const std::string_view method = draw_method_at(text, i);
    if (method.empty()) continue;

    const std::size_t op_begin =
        text[i - 1] == '.' ? i - 1 : i - 2;  // '.' or '->'
    const std::string receiver = receiver_before(text, op_begin);
    if (receiver.empty()) continue;
    const int line = line_of(text, i);

    // Register the draw with every enclosing argument-list group up to the
    // nearest brace: draws inside a lambda body are sequenced by the body's
    // own statements and must not leak into the enclosing call's list.
    for (auto frame = stack.rbegin(); frame != stack.rend(); ++frame) {
      if (frame->kind == '{') break;
      const auto [it, inserted] = frame->draws.emplace(receiver, line);
      if (!inserted) {
        sink.emit(line, kRuleUnsequenced,
                  "second draw '" + receiver + "." + std::string(method) +
                      "()' in one argument list (first draw at line " +
                      std::to_string(it->second) +
                      "): argument evaluation order is unspecified, so the "
                      "draw stream would differ between compilers — draw "
                      "into named locals first");
        break;
      }
    }
    i += method.size() - 1;
  }
}

// ---------------------------------------------------------------------------
// Rule: module-layering
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleLayering = "module-layering";

void rule_module_layering(std::string_view content, const std::string& module,
                          Sink& sink) {
  if (module.empty()) return;
  const auto closure_it = module_closure().find(module);
  if (closure_it == module_closure().end()) return;  // unknown module dir
  const std::set<std::string>& allowed = closure_it->second;

  for (const Include& inc : collect_includes(content)) {
    if (!inc.path.starts_with("rrb/")) continue;
    const std::size_t end = inc.path.find('/', 4);
    if (end == std::string::npos) continue;
    const std::string target = inc.path.substr(4, end - 4);
    if (target == module || allowed.count(target) != 0) continue;
    if (module_deps().count(target) == 0) {
      sink.emit(inc.line, kRuleLayering,
                "include of unknown rrb module '" + target + "' ('" +
                    inc.path + "')");
    } else {
      sink.emit(inc.line, kRuleLayering,
                "module '" + module + "' may not include '" + inc.path +
                    "': '" + target +
                    "' is not in its dependency cone (see the layering "
                    "comment in src/CMakeLists.txt)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: telemetry-side-channel
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleTelemetry = "telemetry-side-channel";

/// The translation units that render deterministic bytes: every metrics TU
/// (observer digests feed recorded fingerprints) and the exp artifact/journal
/// writers. Telemetry is a wall-clock side channel (ROADMAP telemetry
/// invariant) — these TUs may not even see its headers, so a timing or RSS
/// value can never leak into an artifact by construction.
bool artifact_writing_tu(const std::string& module,
                         std::string_view display_path) {
  if (module == "metrics") return true;
  if (module != "exp") return false;
  const std::size_t slash = display_path.find_last_of('/');
  const std::string_view base = slash == std::string_view::npos
                                    ? display_path
                                    : display_path.substr(slash + 1);
  return base.starts_with("artifact") || base.starts_with("journal");
}

void rule_telemetry_side_channel(std::string_view content,
                                 const std::string& module,
                                 std::string_view display_path, Sink& sink) {
  if (!artifact_writing_tu(module, display_path)) return;
  for (const Include& inc : collect_includes(content)) {
    if (!inc.path.starts_with("rrb/telemetry/")) continue;
    sink.emit(inc.line, kRuleTelemetry,
              "artifact/record-writing translation unit includes '" +
                  inc.path +
                  "': telemetry is a wall-clock side channel and may never "
                  "be visible where deterministic bytes are rendered "
                  "(ROADMAP telemetry invariant)");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      std::string(kRuleNondet),      std::string(kRuleUnordered),
      std::string(kRuleObserver),    std::string(kRuleUnsequenced),
      std::string(kRuleLayering),    std::string(kRuleTelemetry),
  };
  return kNames;
}

bool is_rule(std::string_view name) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

FileReport lint_file(std::string_view display_path, std::string_view content,
                     const Options& options) {
  FileReport report;
  const Scrubbed scrubbed = scrub(content);
  const std::string module = module_of(display_path);
  Sink sink(display_path, scrubbed, options, report);

  rule_nondeterminism(scrubbed, module, sink);
  rule_unordered_iteration(scrubbed, module, sink);
  rule_observer_read_only(content, scrubbed, module, sink);
  rule_unsequenced_rng_args(scrubbed, sink);
  rule_module_layering(content, module, sink);
  rule_telemetry_side_channel(content, module, display_path, sink);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return report;
}

}  // namespace rrb::lint
