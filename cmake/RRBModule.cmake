# rrb_add_module(<name> SOURCES <src...> [DEPENDS <module...>])
#
# Declares the static library `rrb_<name>` (alias `rrb::<name>`) for a
# module living in src/<name>/ with public headers under
# src/<name>/include/rrb/<name>/. Module dependencies are PUBLIC because
# our public headers include headers of the modules they depend on.

function(rrb_add_module name)
  cmake_parse_arguments(RRB_MOD "" "" "SOURCES;DEPENDS" ${ARGN})
  if(NOT RRB_MOD_SOURCES)
    message(FATAL_ERROR "rrb_add_module(${name}): SOURCES is required")
  endif()

  set(target rrb_${name})
  add_library(${target} STATIC ${RRB_MOD_SOURCES})
  add_library(rrb::${name} ALIAS ${target})

  target_include_directories(${target} PUBLIC
    $<BUILD_INTERFACE:${CMAKE_CURRENT_SOURCE_DIR}/include>)
  target_compile_features(${target} PUBLIC cxx_std_20)

  foreach(dep IN LISTS RRB_MOD_DEPENDS)
    target_link_libraries(${target} PUBLIC rrb::${dep})
  endforeach()
  target_link_libraries(${target} PRIVATE rrb::compile_options)
endfunction()
