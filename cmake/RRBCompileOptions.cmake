# Shared compile options for every target built in this repository.
#
# `rrb::compile_options` is linked PRIVATE into each target: the warnings
# and sanitizer flags apply to our own translation units but are not
# imposed on downstream consumers of the libraries.

option(RRB_WERROR "Treat warnings as errors" OFF)
option(RRB_SANITIZE "Build with AddressSanitizer + UndefinedBehaviorSanitizer" OFF)

add_library(rrb_compile_options INTERFACE)
add_library(rrb::compile_options ALIAS rrb_compile_options)

if(MSVC)
  target_compile_options(rrb_compile_options INTERFACE /W4)
  if(RRB_WERROR)
    target_compile_options(rrb_compile_options INTERFACE /WX)
  endif()
else()
  target_compile_options(rrb_compile_options INTERFACE -Wall -Wextra -Wshadow)
  if(RRB_WERROR)
    target_compile_options(rrb_compile_options INTERFACE -Werror)
  endif()
endif()

if(RRB_SANITIZE)
  if(MSVC)
    message(FATAL_ERROR "RRB_SANITIZE is only supported with GCC/Clang")
  endif()
  target_compile_options(rrb_compile_options INTERFACE
    -fsanitize=address,undefined
    -fno-sanitize-recover=all
    -fno-omit-frame-pointer)
  target_link_options(rrb_compile_options INTERFACE
    -fsanitize=address,undefined)
endif()
