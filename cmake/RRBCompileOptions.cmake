# Shared compile options for every target built in this repository.
#
# `rrb::compile_options` is linked PRIVATE into each target: the warnings
# and sanitizer flags apply to our own translation units but are not
# imposed on downstream consumers of the libraries.

option(RRB_WERROR "Treat warnings as errors" OFF)
option(RRB_SANITIZE "Build with AddressSanitizer + UndefinedBehaviorSanitizer" OFF)
option(RRB_SANITIZE_THREAD "Build with ThreadSanitizer" OFF)

if(RRB_SANITIZE AND RRB_SANITIZE_THREAD)
  message(FATAL_ERROR
    "RRB_SANITIZE and RRB_SANITIZE_THREAD are mutually exclusive: "
    "ASan and TSan cannot be combined in one binary. Use the asan and "
    "tsan presets in separate build trees.")
endif()

add_library(rrb_compile_options INTERFACE)
add_library(rrb::compile_options ALIAS rrb_compile_options)

if(MSVC)
  target_compile_options(rrb_compile_options INTERFACE /W4)
  if(RRB_WERROR)
    target_compile_options(rrb_compile_options INTERFACE /WX)
  endif()
else()
  target_compile_options(rrb_compile_options INTERFACE -Wall -Wextra -Wshadow)
  if(RRB_WERROR)
    target_compile_options(rrb_compile_options INTERFACE -Werror)
  endif()
endif()

if(RRB_SANITIZE)
  if(MSVC)
    message(FATAL_ERROR "RRB_SANITIZE is only supported with GCC/Clang")
  endif()
  target_compile_options(rrb_compile_options INTERFACE
    -fsanitize=address,undefined
    -fno-sanitize-recover=all
    -fno-omit-frame-pointer)
  target_link_options(rrb_compile_options INTERFACE
    -fsanitize=address,undefined)
endif()

if(RRB_SANITIZE_THREAD)
  if(MSVC)
    message(FATAL_ERROR "RRB_SANITIZE_THREAD is only supported with GCC/Clang")
  endif()
  # TSan watches the ParallelRunner thread pool and the campaign cell
  # executor — the layers whose data races would silently break the
  # (seed, i) determinism contract rather than crash. Run the determinism
  # suites under this preset with RRB_THREADS=4 (the tsan CI job does).
  target_compile_options(rrb_compile_options INTERFACE
    -fsanitize=thread
    -fno-omit-frame-pointer)
  target_link_options(rrb_compile_options INTERFACE
    -fsanitize=thread)
endif()
