# Byte-compare the deterministic campaign artifacts of one or more
# directories against a reference run:
#
#   cmake -DREF=<dir> -DDIRS=<d1>,<d2>,... -P RRBCompareArtifacts.cmake
#
# Compares results.jsonl, results.csv and campaign.json — the files the
# determinism contract covers. manifest.jsonl is line-order-dependent
# (journal append order) and timing.jsonl is a wall-clock side channel, so
# neither is diffed here.
if(NOT REF OR NOT DIRS)
  message(FATAL_ERROR "usage: cmake -DREF=<dir> -DDIRS=<d1>,<d2>,... -P RRBCompareArtifacts.cmake")
endif()
string(REPLACE "," ";" dirs "${DIRS}")
foreach(dir IN LISTS dirs)
  foreach(file results.jsonl results.csv campaign.json)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files ${REF}/${file} ${dir}/${file}
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "${dir}/${file} differs from ${REF}/${file} — distribution changed "
        "the artifacts (the 'scheduling, never semantics' invariant is "
        "broken)")
    endif()
  endforeach()
  message(STATUS "${dir}: artifacts byte-identical to ${REF}")
endforeach()
